#include "service/protocol.h"

#include "serialize/bytes.h"

namespace unizk {
namespace service {

namespace {

/** Append a length-prefixed byte string. */
void
putBytes(ByteWriter &w, const uint8_t *data, size_t len)
{
    w.putU64(len);
    w.putRaw(data, len);
}

/**
 * Read a length-prefixed byte string, bounded by the bytes actually
 * present (canRead) and by @p max_len before allocating.
 */
std::optional<std::vector<uint8_t>>
getBytes(ByteReader &r, uint64_t max_len)
{
    const uint64_t len = r.getU64();
    if (!r.ok() || len > max_len || !r.canRead(len, 1))
        return std::nullopt;
    std::vector<uint8_t> out = r.getRaw(len);
    if (!r.ok())
        return std::nullopt;
    return out;
}

bool
validProveFields(const ProveRequest &req)
{
    if (req.protocol != WireProtocol::Plonky2 &&
        req.protocol != WireProtocol::Starky) {
        return false;
    }
    if (static_cast<uint64_t>(req.app) >
        static_cast<uint64_t>(AppId::Recursion)) {
        return false;
    }
    if (req.rows > kMaxRequestRows || req.reps > kMaxRequestReps)
        return false;
    if (req.protocol == WireProtocol::Starky &&
        !hasStarkImplementation(req.app)) {
        return false;
    }
    return true;
}

} // namespace

FriConfig
requestFriConfig(const ProveRequest &req)
{
    FriConfig cfg = req.protocol == WireProtocol::Plonky2
                        ? FriConfig::plonky2()
                        : FriConfig::starky();
    // Same knobs as unizk_cli --fast.
    if (req.fast) {
        cfg.powBits = 8;
        cfg.numQueries =
            req.protocol == WireProtocol::Plonky2 ? 8 : 16;
    }
    return cfg;
}

size_t
requestRows(const ProveRequest &req)
{
    return req.rows ? req.rows : defaultParams(req.app).rows;
}

size_t
requestReps(const ProveRequest &req)
{
    return req.reps ? req.reps : defaultParams(req.app).repetitions;
}

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadFrame:
        return "bad-frame";
    case ErrorCode::BadRequest:
        return "bad-request";
    case ErrorCode::QueueFull:
        return "queue-full";
    case ErrorCode::ShuttingDown:
        return "shutting-down";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeProveRequest(const ProveRequest &req)
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Prove));
    w.putU64(static_cast<uint64_t>(req.protocol));
    w.putU64(static_cast<uint64_t>(req.app));
    w.putU64(req.rows);
    w.putU64(req.reps);
    const uint64_t flags =
        (req.fast ? 1u : 0u) | (req.verify ? 2u : 0u);
    w.putU64(flags);
    return w.take();
}

std::vector<uint8_t>
encodePing()
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Ping));
    return w.take();
}

std::vector<uint8_t>
encodeShutdown()
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Shutdown));
    return w.take();
}

std::vector<uint8_t>
encodeProveResponse(const ProveResponse &resp)
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::ProveOk));
    w.putU64(resp.verified ? 1 : 0);
    w.putU64(resp.latencyNs);
    w.putU64(resp.queueDepth);
    putBytes(w, resp.proof.data(), resp.proof.size());
    return w.take();
}

std::vector<uint8_t>
encodePong()
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Pong));
    return w.take();
}

std::vector<uint8_t>
encodeShutdownAck()
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::ShutdownAck));
    return w.take();
}

std::vector<uint8_t>
encodeError(ErrorCode code, const std::string &message)
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(Tag::Error));
    w.putU64(static_cast<uint64_t>(code));
    putBytes(w, reinterpret_cast<const uint8_t *>(message.data()),
             message.size());
    return w.take();
}

std::optional<RequestFrame>
decodeRequest(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload);
    RequestFrame frame;
    const uint64_t tag = r.getU64();
    if (!r.ok())
        return std::nullopt;
    switch (static_cast<Tag>(tag)) {
    case Tag::Ping:
        frame.tag = Tag::Ping;
        break;
    case Tag::Shutdown:
        frame.tag = Tag::Shutdown;
        break;
    case Tag::Prove: {
        frame.tag = Tag::Prove;
        ProveRequest &req = frame.prove;
        req.protocol = static_cast<WireProtocol>(r.getU64());
        req.app = static_cast<AppId>(r.getU64());
        req.rows = r.getU64();
        req.reps = r.getU64();
        const uint64_t flags = r.getU64();
        req.fast = (flags & 1) != 0;
        req.verify = (flags & 2) != 0;
        if (!r.ok() || !validProveFields(req))
            return std::nullopt;
        break;
    }
    default:
        return std::nullopt;
    }
    if (!r.exhausted())
        return std::nullopt;
    return frame;
}

std::optional<ResponseFrame>
decodeResponse(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload);
    ResponseFrame frame;
    const uint64_t tag = r.getU64();
    if (!r.ok())
        return std::nullopt;
    switch (static_cast<Tag>(tag)) {
    case Tag::Pong:
        frame.tag = Tag::Pong;
        break;
    case Tag::ShutdownAck:
        frame.tag = Tag::ShutdownAck;
        break;
    case Tag::ProveOk: {
        frame.tag = Tag::ProveOk;
        ProveResponse &resp = frame.prove;
        resp.verified = r.getU64() != 0;
        resp.latencyNs = r.getU64();
        resp.queueDepth = r.getU64();
        auto proof = getBytes(r, kMaxResponseFrameBytes);
        if (!r.ok() || !proof)
            return std::nullopt;
        resp.proof = std::move(*proof);
        break;
    }
    case Tag::Error: {
        frame.tag = Tag::Error;
        ErrorResponse &err = frame.error;
        const uint64_t code = r.getU64();
        if (code < static_cast<uint64_t>(ErrorCode::BadFrame) ||
            code > static_cast<uint64_t>(ErrorCode::ShuttingDown)) {
            return std::nullopt;
        }
        err.code = static_cast<ErrorCode>(code);
        auto msg = getBytes(r, 4096);
        if (!r.ok() || !msg)
            return std::nullopt;
        err.message.assign(msg->begin(), msg->end());
        break;
    }
    default:
        return std::nullopt;
    }
    if (!r.exhausted())
        return std::nullopt;
    return frame;
}

} // namespace service
} // namespace unizk
