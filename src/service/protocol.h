/**
 * @file
 * Wire protocol for the unizkd proving service: length-prefixed binary
 * frames layered on the serialize ByteReader/ByteWriter primitives.
 *
 * Framing
 *   Every message is one frame: a u64 little-endian payload length
 *   followed by that many payload bytes. The length is untrusted input
 *   and is bounded (kMaxRequestFrameBytes on the server side,
 *   kMaxResponseFrameBytes on the client side) *before* any allocation
 *   -- the same no-allocation-from-unbounded-claims discipline the
 *   proof deserializers follow via ByteReader::canRead.
 *
 * Payloads
 *   Each payload starts with a u64 tag. Decoding is total: malformed
 *   payloads yield std::nullopt, never undefined behaviour, because a
 *   server reading untrusted bytes cannot tolerate less.
 */

#ifndef UNIZK_SERVICE_PROTOCOL_H
#define UNIZK_SERVICE_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fri/fri_config.h"
#include "workloads/apps.h"

namespace unizk {
namespace service {

/** Hard ceilings on frame payload sizes, checked before allocating. */
constexpr uint64_t kMaxRequestFrameBytes = uint64_t{1} << 16;
constexpr uint64_t kMaxResponseFrameBytes = uint64_t{1} << 28;

/** Payload tags. Requests are client -> server, responses the reverse. */
enum class Tag : uint64_t
{
    // Requests.
    Prove = 1,
    Ping = 2,
    Shutdown = 3,

    // Responses.
    ProveOk = 101,
    Pong = 102,
    ShutdownAck = 103,
    Error = 104,
};

/** Typed error codes carried by Tag::Error frames. */
enum class ErrorCode : uint64_t
{
    BadFrame = 1,    ///< malformed / oversized / truncated frame
    BadRequest = 2,  ///< unknown tag or out-of-range request fields
    QueueFull = 3,   ///< admission control rejected the request
    ShuttingDown = 4 ///< server is draining; no new work accepted
};

const char *errorCodeName(ErrorCode code);

/** Proof-system selector on the wire. */
enum class WireProtocol : uint64_t
{
    Plonky2 = 0,
    Starky = 1,
};

/** One proof request. All fields are validated on decode. */
struct ProveRequest
{
    WireProtocol protocol = WireProtocol::Plonky2;
    AppId app = AppId::Factorial;
    uint64_t rows = 0; ///< 0 = the app's default shape
    uint64_t reps = 0; ///< 0 = the app's default (Plonky2 only)
    bool fast = true;  ///< reduced FRI security, as unizk_cli --fast
    bool verify = true;
};

/** Successful proof response. */
struct ProveResponse
{
    bool verified = false;
    uint64_t latencyNs = 0;   ///< queue admission -> proof completion
    uint64_t queueDepth = 0;  ///< jobs ahead of this one at admission
    std::vector<uint8_t> proof; ///< canonical serialized proof bytes
};

/** Typed error response. */
struct ErrorResponse
{
    ErrorCode code = ErrorCode::BadFrame;
    std::string message;
};

/** A decoded request payload (tag + per-tag body). */
struct RequestFrame
{
    Tag tag = Tag::Ping;
    ProveRequest prove; ///< valid iff tag == Tag::Prove
};

/** A decoded response payload (tag + per-tag body). */
struct ResponseFrame
{
    Tag tag = Tag::Pong;
    ProveResponse prove; ///< valid iff tag == Tag::ProveOk
    ErrorResponse error; ///< valid iff tag == Tag::Error
};

// Request-field ceilings enforced by decodeRequest: the prover pads
// rows to a power of two and materializes 3*reps wire columns, so an
// unbounded claim would be an allocation-DoS just like an unbounded
// proof length prefix.
constexpr uint64_t kMaxRequestRows = uint64_t{1} << 20;
constexpr uint64_t kMaxRequestReps = 128;

/**
 * Resolve a request to concrete prover inputs, mirroring unizk_cli's
 * --fast and default-shape handling. Server lanes and the client's
 * --check verification both use these, which is what makes service
 * proofs byte-identical to the direct CLI path.
 */
FriConfig requestFriConfig(const ProveRequest &req);
size_t requestRows(const ProveRequest &req);
size_t requestReps(const ProveRequest &req);

std::vector<uint8_t> encodeProveRequest(const ProveRequest &req);
std::vector<uint8_t> encodePing();
std::vector<uint8_t> encodeShutdown();

std::vector<uint8_t> encodeProveResponse(const ProveResponse &resp);
std::vector<uint8_t> encodePong();
std::vector<uint8_t> encodeShutdownAck();
std::vector<uint8_t> encodeError(ErrorCode code,
                                 const std::string &message);

/**
 * Decode a request payload. Returns std::nullopt for unknown tags,
 * out-of-range fields (rows/reps/app/protocol), a Starky request for
 * an app without a Starky implementation, or trailing bytes.
 */
std::optional<RequestFrame>
decodeRequest(const std::vector<uint8_t> &payload);

/** Decode a response payload (client side); total like decodeRequest. */
std::optional<ResponseFrame>
decodeResponse(const std::vector<uint8_t> &payload);

} // namespace service
} // namespace unizk

#endif // UNIZK_SERVICE_PROTOCOL_H
