/**
 * @file
 * Wire protocol for the unizkd proving service: length-prefixed binary
 * frames layered on the serialize ByteReader/ByteWriter primitives.
 *
 * Framing
 *   Every message is one frame: a u64 little-endian payload length
 *   followed by that many payload bytes. The length is untrusted input
 *   and is bounded (kMaxRequestFrameBytes on the server side,
 *   kMaxResponseFrameBytes on the client side) *before* any allocation
 *   -- the same no-allocation-from-unbounded-claims discipline the
 *   proof deserializers follow via ByteReader::canRead.
 *
 * Payloads
 *   Each payload starts with a u64 tag. Decoding is total: malformed
 *   payloads yield std::nullopt, never undefined behaviour, because a
 *   server reading untrusted bytes cannot tolerate less.
 */

#ifndef UNIZK_SERVICE_PROTOCOL_H
#define UNIZK_SERVICE_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fri/fri_config.h"
#include "obs/obs.h"
#include "workloads/apps.h"

namespace unizk {
namespace service {

/** Hard ceilings on frame payload sizes, checked before allocating. */
constexpr uint64_t kMaxRequestFrameBytes = uint64_t{1} << 16;
constexpr uint64_t kMaxResponseFrameBytes = uint64_t{1} << 28;

/**
 * Payload tags. Requests are client -> server, responses the reverse.
 *
 * Versioning: ProveV2/ProveOkV2 extend the v1 prove frames with a
 * trace id (and, on the response, the server-side latency
 * decomposition). The v1 layouts are frozen -- a v1 client talking to
 * a v2 server (or the reverse) keeps working, because a prove request
 * without a trace id is encoded as Tag::Prove and answered with
 * Tag::ProveOk, while a traced request uses the V2 pair end to end
 * (traceId != 0 <=> V2 frames; regression-tested both directions).
 */
enum class Tag : uint64_t
{
    // Requests.
    Prove = 1,
    Ping = 2,
    Shutdown = 3,
    ProveV2 = 4,  ///< Prove + trailing non-zero traceId
    GetStats = 5, ///< rotate + fetch the daemon's stats window

    // Responses.
    ProveOk = 101,
    Pong = 102,
    ShutdownAck = 103,
    Error = 104,
    ProveOkV2 = 105, ///< ProveOk + trace echo and timing decomposition
    StatsOk = 106,
};

/** Typed error codes carried by Tag::Error frames. */
enum class ErrorCode : uint64_t
{
    BadFrame = 1,    ///< malformed / oversized / truncated frame
    BadRequest = 2,  ///< unknown tag or out-of-range request fields
    QueueFull = 3,   ///< admission control rejected the request
    ShuttingDown = 4 ///< server is draining; no new work accepted
};

const char *errorCodeName(ErrorCode code);

/** Proof-system selector on the wire. */
enum class WireProtocol : uint64_t
{
    Plonky2 = 0,
    Starky = 1,
};

/** One proof request. All fields are validated on decode. */
struct ProveRequest
{
    WireProtocol protocol = WireProtocol::Plonky2;
    AppId app = AppId::Factorial;
    uint64_t rows = 0; ///< 0 = the app's default shape
    uint64_t reps = 0; ///< 0 = the app's default (Plonky2 only)
    bool fast = true;  ///< reduced FRI security, as unizk_cli --fast
    bool verify = true;
    /** Client-generated trace id; 0 = untraced (encoded as a legacy
     *  Tag::Prove frame). Non-zero selects the ProveV2 frame, tags the
     *  daemon's per-request span tree, and is echoed in the response
     *  together with the server-side timing decomposition. */
    uint64_t traceId = 0;
};

/** Successful proof response. */
struct ProveResponse
{
    bool verified = false;
    uint64_t latencyNs = 0;   ///< queue admission -> response serialized
    uint64_t queueDepth = 0;  ///< jobs ahead of this one at admission
    std::vector<uint8_t> proof; ///< canonical serialized proof bytes

    /** True iff the ProveOkV2 fields below are populated (the request
     *  carried a trace id). The server guarantees
     *  queuedNs + proveNs + serializeNs <= latencyNs by sampling
     *  latencyNs last. */
    bool hasServerTiming = false;
    uint64_t traceId = 0;     ///< echo of the request's trace id
    uint64_t laneId = 0;      ///< prover lane that ran the request
    uint64_t queuedNs = 0;    ///< admission -> lane dequeue
    uint64_t proveNs = 0;     ///< prover pipeline (prove + verify)
    uint64_t serializeNs = 0; ///< response proof-section serialization
};

/** One counter as carried by a StatsOk frame. */
struct StatsCounterWindow
{
    std::string name;
    uint64_t delta = 0;
    uint64_t cumulative = 0;
};

/** One histogram as carried by a StatsOk frame (dense buckets). */
struct StatsHistogramWindow
{
    std::string name;
    obs::HistogramData delta;
    obs::HistogramData cumulative;
};

/**
 * One stats window (GetStats response): the obs snapshot rotation
 * (sequence, interval, per-name delta+cumulative) plus live service
 * gauges (queue occupancy, lane occupancy, span drops).
 */
struct StatsResponse
{
    uint64_t sequence = 0;
    uint64_t windowStartNs = 0;
    uint64_t windowEndNs = 0;
    uint64_t queueDepth = 0;
    uint64_t queueCapacity = 0;
    uint64_t lanes = 0;
    uint64_t lanesBusy = 0;
    uint64_t spansDropped = 0;
    std::vector<StatsCounterWindow> counters;     ///< sorted by name
    std::vector<StatsHistogramWindow> histograms; ///< sorted by name
};

/** Typed error response. */
struct ErrorResponse
{
    ErrorCode code = ErrorCode::BadFrame;
    std::string message;
};

/** A decoded request payload (tag + per-tag body). Traced prove
 *  requests decode with tag == Tag::Prove (the prove body's traceId
 *  distinguishes them), so server dispatch stays tag-version-blind. */
struct RequestFrame
{
    Tag tag = Tag::Ping;
    ProveRequest prove; ///< valid iff tag == Tag::Prove
};

/** A decoded response payload (tag + per-tag body). V2 prove
 *  responses decode with tag == Tag::ProveOk and
 *  prove.hasServerTiming == true. */
struct ResponseFrame
{
    Tag tag = Tag::Pong;
    ProveResponse prove; ///< valid iff tag == Tag::ProveOk
    ErrorResponse error; ///< valid iff tag == Tag::Error
    StatsResponse stats; ///< valid iff tag == Tag::StatsOk
};

// Request-field ceilings enforced by decodeRequest: the prover pads
// rows to a power of two and materializes 3*reps wire columns, so an
// unbounded claim would be an allocation-DoS just like an unbounded
// proof length prefix.
constexpr uint64_t kMaxRequestRows = uint64_t{1} << 20;
constexpr uint64_t kMaxRequestReps = 128;

/**
 * Resolve a request to concrete prover inputs, mirroring unizk_cli's
 * --fast and default-shape handling. Server lanes and the client's
 * --check verification both use these, which is what makes service
 * proofs byte-identical to the direct CLI path.
 */
FriConfig requestFriConfig(const ProveRequest &req);
size_t requestRows(const ProveRequest &req);
size_t requestReps(const ProveRequest &req);

/** Emits Tag::Prove when req.traceId == 0, Tag::ProveV2 otherwise. */
std::vector<uint8_t> encodeProveRequest(const ProveRequest &req);
std::vector<uint8_t> encodePing();
std::vector<uint8_t> encodeShutdown();
std::vector<uint8_t> encodeGetStats();

/** Emits Tag::ProveOk, or Tag::ProveOkV2 when resp.hasServerTiming. */
std::vector<uint8_t> encodeProveResponse(const ProveResponse &resp);

/**
 * Two-step prove-response encoding for the server's serialization
 * clock: encodeProofSection serializes the (dominant) length-prefixed
 * proof bytes, finishProveResponse prepends the header fields. The
 * split lets a prover lane time the proof serialization *before* it
 * samples the final latencyNs that goes into the header, so
 * queuedNs + proveNs + serializeNs <= latencyNs holds by
 * construction. For any resp,
 *   finishProveResponse(resp, encodeProofSection(resp.proof))
 *     == encodeProveResponse(resp)   (pinned by test_service).
 */
std::vector<uint8_t>
encodeProofSection(const std::vector<uint8_t> &proof);
std::vector<uint8_t>
finishProveResponse(const ProveResponse &resp,
                    const std::vector<uint8_t> &proof_section);

std::vector<uint8_t> encodePong();
std::vector<uint8_t> encodeShutdownAck();
std::vector<uint8_t> encodeError(ErrorCode code,
                                 const std::string &message);
std::vector<uint8_t> encodeStatsResponse(const StatsResponse &stats);

/**
 * Decode a request payload. Returns std::nullopt for unknown tags,
 * out-of-range fields (rows/reps/app/protocol), a Starky request for
 * an app without a Starky implementation, or trailing bytes.
 */
std::optional<RequestFrame>
decodeRequest(const std::vector<uint8_t> &payload);

/** Decode a response payload (client side); total like decodeRequest. */
std::optional<ResponseFrame>
decodeResponse(const std::vector<uint8_t> &payload);

} // namespace service
} // namespace unizk

#endif // UNIZK_SERVICE_PROTOCOL_H
