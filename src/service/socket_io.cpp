#include "service/socket_io.h"

#include <cerrno>
#include <cstring>
#include <ctime>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace unizk {
namespace service {

namespace {

/** Read exactly @p len bytes; false on EOF/error before completion. */
bool
readAll(int fd, uint8_t *buf, size_t len)
{
    size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, buf + got, len - got, 0);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        got += static_cast<size_t>(n);
    }
    return true;
}

/** Write exactly @p len bytes; MSG_NOSIGNAL so a dead peer yields
 *  EPIPE instead of killing the process. */
bool
writeAll(int fd, const uint8_t *buf, size_t len)
{
    size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Fd
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        return Fd();
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return Fd();
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        return Fd();
    }
    if (::listen(fd.get(), 64) != 0)
        return Fd();
    return fd;
}

Fd
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        return Fd();
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return Fd();
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        return Fd();
    }
    return fd;
}

FrameResult
readFrame(int fd, uint64_t max_payload, std::vector<uint8_t> &payload)
{
    uint8_t header[8];
    // Distinguish a clean close (EOF before any header byte) from a
    // peer that vanished mid-frame. EINTR retries iteratively: the
    // recursive retry this replaced grew one stack frame per delivered
    // signal, so a signal storm against a blocked reader could run the
    // connection thread off its stack.
    {
        ssize_t n;
        do {
            n = ::recv(fd, header, sizeof(header), MSG_PEEK);
        } while (n < 0 && errno == EINTR);
        if (n == 0)
            return FrameResult::Eof;
        if (n < 0)
            return FrameResult::IoError;
    }
    if (!readAll(fd, header, sizeof(header)))
        return FrameResult::Truncated;
    uint64_t len = 0;
    for (size_t i = 0; i < 8; ++i)
        len |= static_cast<uint64_t>(header[i]) << (8 * i);
    // The length claim is untrusted: bound it before the allocation.
    if (len > max_payload)
        return FrameResult::TooLarge;
    payload.resize(len);
    if (len > 0 && !readAll(fd, payload.data(), len))
        return FrameResult::Truncated;
    return FrameResult::Ok;
}

bool
writeFrame(int fd, const std::vector<uint8_t> &payload)
{
    uint8_t header[8];
    const uint64_t len = payload.size();
    for (size_t i = 0; i < 8; ++i)
        header[i] = static_cast<uint8_t>(len >> (8 * i));
    return writeAll(fd, header, sizeof(header)) &&
           writeAll(fd, payload.data(), payload.size());
}

WakePipe::WakePipe()
{
    int fds[2] = {-1, -1};
    if (::pipe(fds) == 0) {
        read_end_ = Fd(fds[0]);
        write_end_ = Fd(fds[1]);
    }
}

void
WakePipe::signal()
{
    if (write_end_.valid()) {
        const uint8_t byte = 1;
        // A full pipe still wakes the reader; the result is irrelevant.
        [[maybe_unused]] const ssize_t n =
            ::write(write_end_.get(), &byte, 1);
    }
}

bool
waitReadable(int fd, int wake_fd)
{
    for (;;) {
        pollfd fds[2];
        fds[0].fd = fd;
        fds[0].events = POLLIN;
        fds[0].revents = 0;
        fds[1].fd = wake_fd;
        fds[1].events = POLLIN;
        fds[1].revents = 0;
        const int n = ::poll(fds, 2, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (fds[1].revents != 0)
            return false;
        if (fds[0].revents != 0)
            return true;
    }
}

bool
waitReadableMs(int fd, int timeout_ms)
{
    auto now_ms = [] {
        timespec ts{};
        ::clock_gettime(CLOCK_MONOTONIC, &ts);
        return static_cast<int64_t>(ts.tv_sec) * 1000 +
               ts.tv_nsec / 1000000;
    };
    const int64_t deadline = now_ms() + timeout_ms;
    int64_t remaining_ms = timeout_ms;
    for (;;) {
        pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int n =
            ::poll(&pfd, 1, static_cast<int>(remaining_ms));
        if (n > 0)
            return pfd.revents != 0;
        if (n < 0 && errno != EINTR)
            return false;
        // Timeout, or EINTR: recompute the budget against the
        // deadline so interruptions cannot extend the wait.
        remaining_ms = deadline - now_ms();
        if (n == 0 || remaining_ms <= 0)
            return false;
    }
}

} // namespace service
} // namespace unizk
