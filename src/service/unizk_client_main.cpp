/**
 * @file
 * unizk_client: driver and closed-loop load injector for unizkd.
 *
 *   unizk_client --socket /tmp/unizkd.sock \
 *                [--connections 4] [--requests 4] \
 *                [--protocol mixed|plonky2|starky] [--app NAME] \
 *                [--rows N] [--reps R] [--check] [--proof-out FILE] \
 *                [--no-trace] [--ping] [--shutdown]
 *
 * Default mode drives N concurrent connections, each issuing M
 * closed-loop requests drawn from a deterministic mixed
 * Plonky2/Starky workload cycle. --check recomputes every distinct
 * request through the in-process pipeline (the same path unizk_cli
 * takes) and asserts the daemon's proofs are byte-identical.
 *
 * Requests carry a trace id by default (ProveV2 frames), so responses
 * come back with the server's latency decomposition (queued / prove /
 * serialize) and the summary reports it against the client-observed
 * round-trip time -- the residual is network + framing. --no-trace
 * falls back to the v1 frames, e.g. when talking to an old daemon.
 *
 * Exits 0 iff every request got a well-formed response and all --check
 * comparisons passed. Backpressure rejections (queue-full /
 * shutting-down errors) are expected under overload: they are counted
 * and reported in the summary line, not treated as failures.
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/sync.h"
#include "obs/json_writer.h"
#include "service/client.h"
#include "unizk/pipeline.h"

namespace {

using namespace unizk;
using service::ProveRequest;
using service::ResponseFrame;
using service::ServiceClient;
using service::Tag;
using service::WireProtocol;

/** Small shapes keep load-test requests sub-second. */
const std::vector<ProveRequest> &
mixedWorkload()
{
    static const std::vector<ProveRequest> mix = [] {
        std::vector<ProveRequest> specs;
        ProveRequest r;
        r.protocol = WireProtocol::Plonky2;
        r.app = AppId::Factorial;
        r.rows = 256;
        r.reps = 2;
        specs.push_back(r);
        r.protocol = WireProtocol::Starky;
        r.app = AppId::Fibonacci;
        r.rows = 256;
        r.reps = 0;
        specs.push_back(r);
        r.protocol = WireProtocol::Plonky2;
        r.app = AppId::Fibonacci;
        r.rows = 128;
        r.reps = 2;
        specs.push_back(r);
        r.protocol = WireProtocol::Starky;
        r.app = AppId::Sha256;
        r.rows = 128;
        r.reps = 0;
        specs.push_back(r);
        return specs;
    }();
    return mix;
}

AppId
parseApp(const std::string &name)
{
    static const AppId all[] = {
        AppId::Factorial, AppId::Fibonacci, AppId::Ecdsa,
        AppId::Sha256,    AppId::ImageCrop, AppId::Mvm,
        AppId::Recursion};
    for (const AppId app : all) {
        if (name == appName(app))
            return app;
    }
    unizk_fatal("unknown --app \"", name, "\"");
}

/** Run the request through the in-process pipeline (unizk_cli path). */
std::vector<uint8_t>
localProof(const ProveRequest &req)
{
    const FriConfig cfg = service::requestFriConfig(req);
    const HardwareConfig hw = HardwareConfig::paperDefault();
    const AppRunResult result =
        req.protocol == WireProtocol::Plonky2
            ? runPlonky2App(req.app, service::requestRows(req),
                            service::requestReps(req), cfg, hw,
                            req.verify)
            : runStarkyApp(req.app, service::requestRows(req), cfg,
                           hw, req.verify);
    return result.proofBlob;
}

/**
 * Shared result tally. Counts move once per completed request, so a
 * single mutex costs nothing measurable -- and unlike the per-field
 * atomics it replaced, the UNIZK_GUARDED_BY contract makes any future
 * unlocked access a compile error under -Werror=thread-safety.
 */
struct Tally
{
    Mutex mutex;
    uint64_t ok UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t queueFull UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t shuttingDown UNIZK_GUARDED_BY(mutex) = 0;
    /** transport/protocol/verify failures */
    uint64_t otherErrors UNIZK_GUARDED_BY(mutex) = 0;
    /** --check byte diffs */
    uint64_t mismatches UNIZK_GUARDED_BY(mutex) = 0;

    // Server-side decomposition, summed over traced ok responses.
    uint64_t traced UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t sumQueuedNs UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t sumProveNs UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t sumSerializeNs UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t sumServerNs UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t sumClientNs UNIZK_GUARDED_BY(mutex) = 0;
    /** responses violating queued+prove+serialize <= serverNs
     *  <= clientNs, or echoing the wrong trace id */
    uint64_t breakdownViolations UNIZK_GUARDED_BY(mutex) = 0;
};

void
runConnection(const std::string &socket_path, size_t conn_index,
              size_t requests, const std::vector<ProveRequest> &specs,
              const std::vector<std::vector<uint8_t>> &expected,
              bool trace, Tally &tally)
{
    ServiceClient client(socket_path);
    if (!client.connected()) {
        warn("unizk_client: connection ", conn_index, " failed");
        MutexLock lock(tally.mutex);
        tally.otherErrors += requests;
        return;
    }
    for (size_t i = 0; i < requests; ++i) {
        const size_t which =
            (conn_index * requests + i) % specs.size();
        ProveRequest req = specs[which];
        // Trace ids only need to be unique within the run; 0 would
        // silently downgrade to a v1 frame, hence the +1.
        req.traceId =
            trace ? conn_index * requests + i + 1 : 0;
        const Stopwatch round_trip;
        const auto resp = client.prove(req);
        const uint64_t client_ns = static_cast<uint64_t>(
            round_trip.elapsedSeconds() * 1e9);
        if (!resp) {
            MutexLock lock(tally.mutex);
            tally.otherErrors += 1;
            return; // transport gone; rest of this stream is lost
        }
        if (resp->tag == Tag::Error) {
            MutexLock lock(tally.mutex);
            switch (resp->error.code) {
            case service::ErrorCode::QueueFull:
                tally.queueFull += 1;
                break;
            case service::ErrorCode::ShuttingDown:
                tally.shuttingDown += 1;
                break;
            default:
                warn("unizk_client: server error: ",
                     errorCodeName(resp->error.code), ": ",
                     resp->error.message);
                tally.otherErrors += 1;
                break;
            }
            continue;
        }
        if (resp->tag != Tag::ProveOk ||
            (req.verify && !resp->prove.verified)) {
            MutexLock lock(tally.mutex);
            tally.otherErrors += 1;
            continue;
        }
        if (!expected.empty() &&
            resp->prove.proof != expected[which]) {
            warn("unizk_client: proof mismatch vs local pipeline "
                 "(spec ",
                 which, ")");
            MutexLock lock(tally.mutex);
            tally.mismatches += 1;
            continue;
        }
        MutexLock lock(tally.mutex);
        tally.ok += 1;
        const service::ProveResponse &p = resp->prove;
        if (p.hasServerTiming) {
            tally.traced += 1;
            tally.sumQueuedNs += p.queuedNs;
            tally.sumProveNs += p.proveNs;
            tally.sumSerializeNs += p.serializeNs;
            tally.sumServerNs += p.latencyNs;
            tally.sumClientNs += client_ns;
            if (p.traceId != req.traceId ||
                p.queuedNs + p.proveNs + p.serializeNs >
                    p.latencyNs ||
                p.latencyNs > client_ns) {
                warn("unizk_client: timing breakdown violated "
                     "(trace ",
                     req.traceId, ")");
                tally.breakdownViolations += 1;
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli(argc, argv);
    applyGlobalCliOptions(cli);

    const std::string socket_path =
        cli.getString("socket", "unizkd.sock");
    const size_t connections = cli.getUint("connections", 4);
    const size_t requests = cli.getUint("requests", 4);
    const std::string protocol =
        cli.getString("protocol", "mixed");
    const bool check = cli.has("check");
    const bool trace = !cli.has("no-trace");
    const std::string proof_out = cli.getString("proof-out", "");

    if (cli.has("ping")) {
        ServiceClient client(socket_path);
        const auto resp = client.ping();
        if (!resp || resp->tag != Tag::Pong) {
            warn("unizk_client: no pong from ", socket_path);
            return 1;
        }
        std::printf("unizk_client: pong\n");
        return 0;
    }

    std::vector<ProveRequest> specs;
    if (protocol == "mixed") {
        specs = mixedWorkload();
    } else if (protocol == "plonky2" || protocol == "starky") {
        ProveRequest r;
        r.protocol = protocol == "plonky2" ? WireProtocol::Plonky2
                                           : WireProtocol::Starky;
        r.app = parseApp(cli.getString("app", "factorial"));
        r.rows = cli.getUint("rows", 256);
        r.reps = cli.getUint("reps", 2);
        specs.push_back(r);
    } else {
        unizk_fatal("--protocol must be mixed, plonky2, or starky");
    }

    // --check: compute the reference proofs once, in-process, before
    // any load is applied.
    std::vector<std::vector<uint8_t>> expected;
    if (check) {
        for (const ProveRequest &spec : specs)
            expected.push_back(localProof(spec));
    }

    Tally tally;
    std::vector<std::thread> workers;
    for (size_t c = 0; c < connections; ++c) {
        workers.emplace_back([&, c] {
            runConnection(socket_path, c, requests, specs, expected,
                          trace, tally);
        });
    }
    for (auto &w : workers)
        w.join();

    if (!proof_out.empty()) {
        ServiceClient client(socket_path);
        const auto resp = client.prove(specs[0]);
        if (resp && resp->tag == Tag::ProveOk) {
            const std::string bytes(resp->prove.proof.begin(),
                                    resp->prove.proof.end());
            if (!obs::writeFile(proof_out, bytes))
                unizk_fatal("cannot write ", proof_out);
            std::printf("unizk_client: wrote proof: %s\n",
                        proof_out.c_str());
        } else {
            warn("unizk_client: --proof-out request failed");
            MutexLock lock(tally.mutex);
            tally.otherErrors += 1;
        }
    }

    if (cli.has("shutdown")) {
        ServiceClient client(socket_path);
        const auto resp = client.shutdownServer();
        if (!resp || resp->tag != Tag::ShutdownAck) {
            warn("unizk_client: shutdown not acknowledged");
            return 1;
        }
        std::printf("unizk_client: server acknowledged shutdown\n");
    }

    MutexLock lock(tally.mutex);
    std::printf("unizk_client: ok=%llu queue_full=%llu "
                "shutting_down=%llu errors=%llu mismatches=%llu\n",
                static_cast<unsigned long long>(tally.ok),
                static_cast<unsigned long long>(tally.queueFull),
                static_cast<unsigned long long>(tally.shuttingDown),
                static_cast<unsigned long long>(tally.otherErrors),
                static_cast<unsigned long long>(tally.mismatches));
    if (tally.traced > 0) {
        const double n = static_cast<double>(tally.traced);
        // Residual = client round-trip minus everything the server
        // accounted for: socket writes, framing, scheduling.
        const double residual_ms =
            (static_cast<double>(tally.sumClientNs) -
             static_cast<double>(tally.sumServerNs)) /
            n / 1e6;
        std::printf(
            "unizk_client: traced=%llu mean ms: queued=%.2f "
            "prove=%.2f serialize=%.2f server=%.2f client=%.2f "
            "residual=%.2f violations=%llu\n",
            static_cast<unsigned long long>(tally.traced),
            static_cast<double>(tally.sumQueuedNs) / n / 1e6,
            static_cast<double>(tally.sumProveNs) / n / 1e6,
            static_cast<double>(tally.sumSerializeNs) / n / 1e6,
            static_cast<double>(tally.sumServerNs) / n / 1e6,
            static_cast<double>(tally.sumClientNs) / n / 1e6,
            residual_ms,
            static_cast<unsigned long long>(
                tally.breakdownViolations));
    }
    return (tally.otherErrors || tally.mismatches ||
            tally.breakdownViolations)
               ? 1
               : 0;
}
