#include "service/client.h"

namespace unizk {
namespace service {

ServiceClient::ServiceClient(const std::string &socket_path)
    : fd_(connectUnix(socket_path))
{
}

std::optional<ResponseFrame>
ServiceClient::prove(const ProveRequest &req)
{
    return roundTrip(encodeProveRequest(req));
}

std::optional<ResponseFrame>
ServiceClient::ping()
{
    return roundTrip(encodePing());
}

std::optional<ResponseFrame>
ServiceClient::shutdownServer()
{
    return roundTrip(encodeShutdown());
}

std::optional<ResponseFrame>
ServiceClient::getStats()
{
    return roundTrip(encodeGetStats());
}

bool
ServiceClient::sendRaw(const std::vector<uint8_t> &payload)
{
    return fd_.valid() && writeFrame(fd_.get(), payload);
}

std::optional<ResponseFrame>
ServiceClient::readResponse()
{
    if (!fd_.valid())
        return std::nullopt;
    std::vector<uint8_t> payload;
    if (readFrame(fd_.get(), kMaxResponseFrameBytes, payload) !=
        FrameResult::Ok) {
        fd_.reset();
        return std::nullopt;
    }
    return decodeResponse(payload);
}

std::optional<ResponseFrame>
ServiceClient::roundTrip(const std::vector<uint8_t> &payload)
{
    if (!sendRaw(payload)) {
        fd_.reset();
        return std::nullopt;
    }
    return readResponse();
}

} // namespace service
} // namespace unizk
