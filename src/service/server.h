/**
 * @file
 * The unizkd proving service: a long-running daemon accepting proof
 * requests over a unix-domain socket.
 *
 * Architecture (DESIGN.md section 8):
 *
 *   accept loop ──> connection threads ──> bounded job queue ──> lanes
 *        │                │  (one per client; frame I/O,   │  (prover
 *        │                │   decode, admission control)   │   lanes on
 *        │                └── write response <── future ───┘   the global
 *        │                                                     ThreadPool)
 *        └── WakePipe interrupts every poll() for shutdown
 *
 * Each connection is closed-loop: the connection thread reads one
 * frame, validates and enqueues it (or rejects with a typed error when
 * the queue is full / draining), waits for the lane's result, writes
 * the response, then reads the next frame. Prover lanes run requests
 * through the existing pipeline (runPlonky2App / runStarkyApp), whose
 * parallelFor regions serialize on the global pool, so proofs remain
 * byte-identical to the one-shot unizk_cli path.
 *
 * Shutdown (SIGINT/SIGTERM via requestStop, or a protocol Shutdown
 * frame) drains: stop accepting, close the queue (admitted jobs still
 * run), join lanes, answer every in-flight request, then join
 * connection threads and unlink the socket.
 */

#ifndef UNIZK_SERVICE_SERVER_H
#define UNIZK_SERVICE_SERVER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "obs/stats_export.h"
#include "service/job_queue.h"
#include "service/protocol.h"
#include "service/socket_io.h"

namespace unizk {
namespace service {

struct ServiceConfig
{
    std::string socketPath;

    /** Admission-control bound; tryPush beyond this rejects QueueFull.
     *  0 is legal and rejects every request (used by tests). */
    size_t queueCapacity = 16;

    /** Prover lanes consuming the queue. Lanes share the global
     *  ThreadPool; regions serialize, serial phases overlap. */
    unsigned proverLanes = 2;

    /** Cap on per-request RunStats retained for the stats export. */
    size_t maxStoredRuns = 1024;

    /**
     * Observer for every stats-window rotation the service performs
     * (periodic exporter ticks *and* GetStats requests both go through
     * statsWindow(), which is the single process-wide rotation stream).
     * unizkd uses this to append each window to the --stats-interval
     * JSONL log, so logged sequence numbers stay contiguous even while
     * unizk_top is polling. Called with the rotation lock *not* held;
     * may run on a connection thread, so keep it fast. Empty = no-op.
     */
    std::function<void(const obs::StatsSnapshot &)> windowSink;
};

/** Monotonic counters describing one service lifetime. */
struct ServiceCounters
{
    uint64_t connectionsAccepted = 0;
    uint64_t requestsCompleted = 0;
    uint64_t rejectedQueueFull = 0;
    uint64_t rejectedBadRequest = 0;
    uint64_t rejectedShutdown = 0;
    uint64_t malformedFrames = 0;
    uint64_t disconnects = 0; ///< clients gone mid-request or mid-frame
    uint64_t acceptErrors = 0; ///< failed accept() calls (e.g. EMFILE)
};

/**
 * Backoff (milliseconds) before retrying accept() after it failed with
 * @p error, given @p consecutive_failures so far. EINTR and
 * ECONNABORTED retry immediately (the triggering condition is already
 * consumed); resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) and
 * unexpected errors back off exponentially up to a 1-second cap --
 * under fd exhaustion the listener stays readable and accept() fails
 * instantly, so an unthrottled loop spins a core at 100% while logging
 * nothing. Pure function, unit-tested directly.
 */
int acceptRetryDelayMs(int error, unsigned consecutive_failures);

class ProofService
{
  public:
    explicit ProofService(ServiceConfig cfg);
    ~ProofService();

    ProofService(const ProofService &) = delete;
    ProofService &operator=(const ProofService &) = delete;

    /** Bind the socket and launch accept loop + prover lanes. */
    bool start();

    /** Ask for a graceful drain; returns immediately. Safe to call
     *  from any thread (not from a signal handler -- handlers should
     *  sigwait / self-pipe and call this from a normal thread). */
    void requestStop();

    /** True once requestStop was called (or a Shutdown frame arrived). */
    bool stopRequested() const;

    /** Block until a stop is requested (daemon main loop). */
    void waitForStopRequest();

    /** Like waitForStopRequest, but give up after @p seconds. Returns
     *  true iff a stop was requested (the periodic stats exporter uses
     *  the false branch as its tick). */
    bool waitForStopRequestFor(double seconds);

    /** Drain and join everything; idempotent. start() may not be
     *  called again afterwards. */
    void stop();

    /** Counter snapshot (exact once stopped). */
    ServiceCounters counters() const;

    /** Per-request run stats collected so far (capped, FIFO). */
    std::vector<obs::RunStats> runStats() const;

    /**
     * Rotate the obs stats window (obs::snapshotDelta) and return it
     * together with live service gauges (queue/lane occupancy, span
     * drops). Serves Tag::GetStats and the periodic exporter; every
     * rotation is reported to config_.windowSink, so a JSONL window log
     * sees the full rotation stream and its delta sums still reconcile
     * exactly against the cumulative totals.
     */
    StatsResponse statsWindow();

    const ServiceConfig &config() const { return config_; }

  private:
    struct Job;
    struct Connection;

    void acceptLoop();
    void connectionLoop(Connection &conn);
    void proverLane(unsigned lane_id);

    /** Handle one decoded request; returns false to drop the client. */
    bool handleRequest(Connection &conn,
                       const std::vector<uint8_t> &payload);

    ServiceConfig config_;
    Fd listen_fd_;
    WakePipe wake_;
    std::atomic<bool> stop_requested_{false};
    std::atomic<bool> stopped_{false};

    // Guards no data: stop_requested_ stays an atomic (read lock-free
    // on every accept/connection iteration); the mutex exists to order
    // the flag flip with stop_cv_ waits so wakeups cannot be lost.
    // unizk-lint: disable-next-line=unguarded-mutex-member
    Mutex stop_mutex_;
    CondVar stop_cv_;

    std::unique_ptr<BoundedQueue<std::shared_ptr<Job>>> queue_;
    std::thread accept_thread_;
    std::vector<std::thread> lanes_;

    /** Lanes currently running a request (gauge for GetStats). */
    std::atomic<uint64_t> lanes_busy_{0};

    Mutex connections_mutex_;
    std::vector<std::unique_ptr<Connection>> connections_
        UNIZK_GUARDED_BY(connections_mutex_);

    mutable Mutex stats_mutex_;
    ServiceCounters counters_ UNIZK_GUARDED_BY(stats_mutex_);
    std::vector<obs::RunStats> run_stats_
        UNIZK_GUARDED_BY(stats_mutex_);
};

} // namespace service
} // namespace unizk

#endif // UNIZK_SERVICE_SERVER_H
