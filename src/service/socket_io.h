/**
 * @file
 * Minimal AF_UNIX stream-socket helpers plus frame I/O for the unizkd
 * protocol. All reads are bounded: a frame's length prefix is checked
 * against the caller's ceiling *before* any allocation, so a malicious
 * peer can never force the server to reserve more memory than the
 * ceiling regardless of what the header claims.
 */

#ifndef UNIZK_SERVICE_SOCKET_IO_H
#define UNIZK_SERVICE_SOCKET_IO_H

#include <cstdint>
#include <string>
#include <vector>

namespace unizk {
namespace service {

/** RAII file descriptor. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Create, bind, and listen on a unix-domain stream socket at @p path
 * (unlinking any stale socket file first). Returns an invalid Fd on
 * failure (path too long for sockaddr_un, bind/listen errors).
 */
Fd listenUnix(const std::string &path);

/** Connect to the unix-domain socket at @p path. */
Fd connectUnix(const std::string &path);

enum class FrameResult
{
    Ok,
    Eof,      ///< orderly close before the first header byte
    TooLarge, ///< length claim above the ceiling; nothing allocated
    Truncated,///< peer vanished mid-frame
    IoError,
};

/**
 * Read one frame (u64 length + payload) into @p payload. The length
 * claim is validated against @p max_payload before allocating.
 */
FrameResult readFrame(int fd, uint64_t max_payload,
                      std::vector<uint8_t> &payload);

/** Write one frame; false on any I/O error (e.g. peer disconnected). */
bool writeFrame(int fd, const std::vector<uint8_t> &payload);

/**
 * A self-pipe used to interrupt poll()-based waits: writers call
 * signal() (async-signal-safe), waiters include readFd() in their poll
 * set. Level-triggered -- once signaled it stays readable.
 */
class WakePipe
{
  public:
    WakePipe();

    int readFd() const { return read_end_.get(); }
    void signal();

  private:
    Fd read_end_;
    Fd write_end_;
};

/**
 * Block until @p fd is readable or @p wake_fd fires. Returns true when
 * @p fd has data (or EOF) pending, false when interrupted by the wake
 * pipe.
 */
bool waitReadable(int fd, int wake_fd);

/**
 * Wait up to @p timeout_ms for @p fd to become readable. Returns true
 * when it is (the accept loop uses this on the wake pipe to back off
 * after accept failures while staying responsive to shutdown), false
 * on timeout. EINTR restarts the wait with the remaining budget.
 */
bool waitReadableMs(int fd, int timeout_ms);

} // namespace service
} // namespace unizk

#endif // UNIZK_SERVICE_SOCKET_IO_H
