/**
 * @file
 * unizk_top: live monitoring for a running unizkd.
 *
 *   unizk_top --socket /tmp/unizkd.sock \
 *             [--interval 2] [--count N] [--once] [--prom]
 *
 * Polls Tag::GetStats every --interval seconds; each poll rotates the
 * daemon's stats window and prints one line: window QPS, queue / lane
 * occupancy, p50/p99 request latency over the window, lane utilization
 * (busy-time delta over lanes * wall time), and span-drop count.
 *
 * --once fetches a single window and exits; --prom renders that window
 * in Prometheus text exposition format instead of the human line, so a
 * scrape job can shell out to `unizk_top --once --prom`. Exposition
 * output uses the *cumulative* side of the window (Prometheus rates
 * client-side); the human lines use the deltas.
 *
 * Exits non-zero when the daemon is unreachable or answers with a
 * malformed frame.
 */

#include <csignal>
#include <cstdio>
#include <ctime>
#include <map>
#include <optional>
#include <string>

#include "common/cli.h"
#include "common/logging.h"
#include "obs/exposition.h"
#include "obs/obs.h"
#include "service/client.h"

namespace {

using namespace unizk;
using service::ServiceClient;
using service::StatsResponse;
using service::Tag;

/** Delta of the named counter in this window (0 when absent). */
uint64_t
counterDelta(const StatsResponse &s, const std::string &name)
{
    for (const auto &c : s.counters) {
        if (c.name == name)
            return c.delta;
    }
    return 0;
}

/** Window-delta view of the named histogram, if present and hit. */
const obs::HistogramData *
histogramDelta(const StatsResponse &s, const std::string &name)
{
    for (const auto &h : s.histograms) {
        if (h.name == name)
            return h.delta.count > 0 ? &h.delta : nullptr;
    }
    return nullptr;
}

void
printHeader()
{
    std::printf("%6s %8s %8s %7s %7s %9s %9s %7s %6s\n", "seq",
                "window", "qps", "queue", "lanes", "p50ms", "p99ms",
                "util%", "drops");
}

void
printWindow(const StatsResponse &s)
{
    const double window_s =
        s.windowEndNs > s.windowStartNs
            ? static_cast<double>(s.windowEndNs - s.windowStartNs) /
                  1e9
            : 0.0;
    const uint64_t completed =
        counterDelta(s, "service.requests_completed");
    const double qps = window_s > 0
                           ? static_cast<double>(completed) / window_s
                           : 0.0;

    double p50_ms = 0.0;
    double p99_ms = 0.0;
    if (const obs::HistogramData *lat =
            histogramDelta(s, "service.request_latency_ns")) {
        p50_ms = obs::histogramQuantile(*lat, 0.5) / 1e6;
        p99_ms = obs::histogramQuantile(*lat, 0.99) / 1e6;
    }

    // Lane utilization: busy nanoseconds accumulated this window over
    // the window's lane capacity. Can exceed 100% transiently because
    // lanes report their busy time in one lump when a request ends.
    const uint64_t busy_ns =
        counterDelta(s, "service.lane_busy_ns");
    const double capacity_ns =
        window_s * 1e9 * static_cast<double>(s.lanes);
    const double util =
        capacity_ns > 0
            ? 100.0 * static_cast<double>(busy_ns) / capacity_ns
            : 0.0;

    char queue[32];
    char lanes[32];
    std::snprintf(queue, sizeof(queue), "%llu/%llu",
                  static_cast<unsigned long long>(s.queueDepth),
                  static_cast<unsigned long long>(s.queueCapacity));
    std::snprintf(lanes, sizeof(lanes), "%llu/%llu",
                  static_cast<unsigned long long>(s.lanesBusy),
                  static_cast<unsigned long long>(s.lanes));
    std::printf("%6llu %7.1fs %8.2f %7s %7s %9.1f %9.1f %6.1f%% "
                "%6llu\n",
                static_cast<unsigned long long>(s.sequence), window_s,
                qps, queue, lanes, p50_ms, p99_ms, util,
                static_cast<unsigned long long>(s.spansDropped));
    std::fflush(stdout);
}

/** Render the cumulative side of a window as Prometheus exposition. */
void
printExposition(const StatsResponse &s)
{
    std::map<std::string, uint64_t> counters;
    for (const auto &c : s.counters)
        counters[c.name] = c.cumulative;
    std::map<std::string, obs::HistogramData> histograms;
    for (const auto &h : s.histograms)
        histograms[h.name] = h.cumulative;
    // Service gauges ride along as counters; scrapers treat them as
    // untyped samples.
    counters["service.queue_depth_now"] = s.queueDepth;
    counters["service.lanes_busy_now"] = s.lanesBusy;
    counters["obs.spans_dropped"] = s.spansDropped;
    std::fputs(obs::renderExposition(counters, histograms).c_str(),
               stdout);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli(argc, argv);

    const std::string socket_path =
        cli.getString("socket", "unizkd.sock");
    const double interval = cli.getDouble("interval", 2.0);
    const uint64_t count = cli.getUint("count", 0); // 0 = forever
    const bool once = cli.has("once");
    const bool prom = cli.has("prom");

    // A daemon shutdown mid-poll surfaces as EPIPE on the socket
    // write; report it as "unreachable" instead of dying silently.
    std::signal(SIGPIPE, SIG_IGN);

    if (!prom && !once)
        printHeader();

    uint64_t polls = 0;
    for (;;) {
        ServiceClient client(socket_path);
        std::optional<service::ResponseFrame> resp;
        if (client.connected())
            resp = client.getStats();
        if (!resp || resp->tag != Tag::StatsOk) {
            warn("unizk_top: no stats from ", socket_path);
            return 1;
        }
        if (prom)
            printExposition(resp->stats);
        else
            printWindow(resp->stats);
        polls++;
        if (once || (count > 0 && polls >= count))
            break;
        timespec ts;
        ts.tv_sec = static_cast<time_t>(interval);
        ts.tv_nsec = static_cast<long>(
            (interval - static_cast<double>(ts.tv_sec)) * 1e9);
        nanosleep(&ts, nullptr);
    }
    return 0;
}
