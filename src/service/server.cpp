#include "service/server.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "obs/obs.h"
#include "unizk/pipeline.h"

namespace unizk {
namespace service {

namespace {

/**
 * Clients that stall mid-frame (or vanish without a FIN while we are
 * blocked reading) would otherwise pin their connection thread
 * forever; a receive timeout turns that into a bounded-latency drop,
 * which also bounds how long a graceful drain can take.
 */
void
setRecvTimeout(int fd)
{
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

} // namespace

int
acceptRetryDelayMs(int error, unsigned consecutive_failures)
{
    switch (error) {
      case EINTR:
      case ECONNABORTED: // the pending connection died; queue advanced
#if defined(EAGAIN)
      case EAGAIN: // raced another accepter; nothing left to take
#endif
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
      case EWOULDBLOCK:
#endif
        return 0;
      default:
        break;
    }
    // EMFILE/ENFILE/ENOBUFS/ENOMEM and anything unexpected: exponential
    // backoff from 10 ms, capped at 1 s. The cap also bounds the warn()
    // rate during a sustained fd-exhaustion episode.
    constexpr int kBaseMs = 10;
    constexpr int kMaxMs = 1000;
    const unsigned shift =
        consecutive_failures < 7 ? consecutive_failures : 7;
    const int delay = kBaseMs << shift;
    return delay < kMaxMs ? delay : kMaxMs;
}

struct ProofService::Job
{
    ProveRequest request;
    size_t admissionDepth = 0; ///< written under the queue lock by tryPush
    Stopwatch admitted; ///< starts the latency clock at admission
    /** The lane delivers the fully *encoded* response payload, not a
     *  ProveResponse: serialization is part of the lane's timing
     *  decomposition (serializeNs), and handing back bytes means the
     *  connection thread cannot accidentally re-serialize outside the
     *  measured interval. */
    std::promise<std::vector<uint8_t>> promise;
};

struct ProofService::Connection
{
    Fd fd;
    std::thread thread;
    std::atomic<bool> done{false};
};

ProofService::ProofService(ServiceConfig cfg) : config_(std::move(cfg))
{
    queue_ = std::make_unique<BoundedQueue<std::shared_ptr<Job>>>(
        config_.queueCapacity);
}

ProofService::~ProofService()
{
    stop();
}

bool
ProofService::start()
{
    listen_fd_ = listenUnix(config_.socketPath);
    if (!listen_fd_.valid()) {
        warn("unizkd: cannot listen on '", config_.socketPath, "'");
        return false;
    }
    const unsigned lanes = config_.proverLanes >= 1
                               ? config_.proverLanes
                               : 1;
    for (unsigned i = 0; i < lanes; ++i)
        lanes_.emplace_back([this, i] { proverLane(i); });
    accept_thread_ = std::thread([this] { acceptLoop(); });
    inform("unizkd: serving on ", config_.socketPath, " (queue ",
           config_.queueCapacity, ", lanes ", lanes, ", pool ",
           globalThreadCount(), " threads)");
    return true;
}

void
ProofService::requestStop()
{
    {
        MutexLock lock(stop_mutex_);
        stop_requested_.store(true, std::memory_order_release);
    }
    wake_.signal();
    stop_cv_.notifyAll();
}

bool
ProofService::stopRequested() const
{
    return stop_requested_.load(std::memory_order_acquire);
}

void
ProofService::waitForStopRequest()
{
    MutexLock lock(stop_mutex_);
    while (!stopRequested())
        stop_cv_.wait(stop_mutex_);
}

bool
ProofService::waitForStopRequestFor(double seconds)
{
    const Stopwatch started;
    MutexLock lock(stop_mutex_);
    while (!stopRequested()) {
        const double remaining = seconds - started.elapsedSeconds();
        if (remaining <= 0)
            return false;
        const int64_t ms =
            static_cast<int64_t>(remaining * 1000.0) + 1;
        stop_cv_.waitForMs(stop_mutex_, ms);
    }
    return true;
}

void
ProofService::stop()
{
    if (stopped_.exchange(true))
        return;
    requestStop();

    // 1. No new connections: join the accept loop, drop the listener.
    if (accept_thread_.joinable())
        accept_thread_.join();
    listen_fd_.reset();
    ::unlink(config_.socketPath.c_str());

    // 2. No new admissions; lanes drain every job already admitted, so
    //    each pending future is fulfilled before the lanes exit.
    queue_->close();
    for (auto &lane : lanes_)
        lane.join();
    lanes_.clear();

    // 3. Connection threads finish their in-flight response (its future
    //    is ready by now), observe the stop, and exit.
    std::vector<std::unique_ptr<Connection>> conns;
    {
        MutexLock lock(connections_mutex_);
        conns.swap(connections_);
    }
    for (auto &conn : conns) {
        if (conn->thread.joinable())
            conn->thread.join();
    }
    inform("unizkd: drained and stopped");
}

ServiceCounters
ProofService::counters() const
{
    MutexLock lock(stats_mutex_);
    return counters_;
}

std::vector<obs::RunStats>
ProofService::runStats() const
{
    MutexLock lock(stats_mutex_);
    return run_stats_;
}

StatsResponse
ProofService::statsWindow()
{
    const obs::StatsSnapshot snap = obs::snapshotDelta();

    StatsResponse stats;
    stats.sequence = snap.sequence;
    stats.windowStartNs = snap.windowStartNs;
    stats.windowEndNs = snap.windowEndNs;
    stats.queueDepth = queue_->depth();
    stats.queueCapacity = queue_->capacity();
    stats.lanes = lanes_.size();
    stats.lanesBusy = lanes_busy_.load(std::memory_order_relaxed);
    stats.spansDropped = snap.spans.dropped;
    stats.counters.reserve(snap.counters.size());
    for (const auto &entry : snap.counters) {
        StatsCounterWindow c;
        c.name = entry.first;
        c.delta = entry.second.delta;
        c.cumulative = entry.second.cumulative;
        stats.counters.push_back(std::move(c));
    }
    stats.histograms.reserve(snap.histograms.size());
    for (const auto &entry : snap.histograms) {
        StatsHistogramWindow h;
        h.name = entry.first;
        h.delta = entry.second.delta;
        h.cumulative = entry.second.cumulative;
        stats.histograms.push_back(std::move(h));
    }

    if (config_.windowSink)
        config_.windowSink(snap);
    return stats;
}

void
ProofService::acceptLoop()
{
    unsigned accept_failures = 0;
    while (!stopRequested()) {
        if (!waitReadable(listen_fd_.get(), wake_.readFd()))
            break; // woken for shutdown
        Fd client(::accept(listen_fd_.get(), nullptr, nullptr));
        if (!client.valid()) {
            // Under fd exhaustion (EMFILE/ENFILE) the listener stays
            // readable and accept() fails instantly; an immediate
            // retry would busy-spin this thread at 100% CPU while
            // silently swallowing errno. Count, log, and back off
            // (bounded), staying responsive to shutdown by sleeping
            // on the wake pipe.
            const int err = errno;
            {
                MutexLock lock(stats_mutex_);
                counters_.acceptErrors++;
            }
            UNIZK_COUNTER_ADD("service.accept_errors", 1);
            if (err != EINTR) {
                warn("unizkd: accept failed: ", std::strerror(err),
                     " (errno ", err, ")");
            }
            const int delay =
                acceptRetryDelayMs(err, accept_failures);
            if (accept_failures < ~0u)
                accept_failures++;
            if (delay > 0)
                waitReadableMs(wake_.readFd(), delay);
            continue;
        }
        accept_failures = 0;
        setRecvTimeout(client.get());
        auto conn = std::make_unique<Connection>();
        conn->fd = std::move(client);
        Connection *raw = conn.get();
        conn->thread =
            std::thread([this, raw] { connectionLoop(*raw); });
        {
            MutexLock lock(stats_mutex_);
            counters_.connectionsAccepted++;
        }
        {
            MutexLock lock(connections_mutex_);
            // Reap connections that already finished so a long-lived
            // daemon does not accumulate joined-out thread objects.
            for (auto it = connections_.begin();
                 it != connections_.end();) {
                if ((*it)->done.load(std::memory_order_acquire)) {
                    (*it)->thread.join();
                    it = connections_.erase(it);
                } else {
                    ++it;
                }
            }
            connections_.push_back(std::move(conn));
        }
        UNIZK_COUNTER_ADD("service.connections_accepted", 1);
    }
}

void
ProofService::connectionLoop(Connection &conn)
{
    const int fd = conn.fd.get();
    std::vector<uint8_t> payload;
    for (;;) {
        if (stopRequested())
            break;
        if (!waitReadable(fd, wake_.readFd()))
            break; // shutdown wake while idle
        const FrameResult res =
            readFrame(fd, kMaxRequestFrameBytes, payload);
        if (res == FrameResult::Eof)
            break;
        if (res == FrameResult::TooLarge) {
            // The oversized length claim was rejected before any
            // allocation; tell the client why, then drop it (the rest
            // of its stream is unframed garbage to us now).
            {
                MutexLock lock(stats_mutex_);
                counters_.malformedFrames++;
            }
            writeFrame(fd, encodeError(ErrorCode::BadFrame,
                                       "frame exceeds size bound"));
            break;
        }
        if (res != FrameResult::Ok) {
            MutexLock lock(stats_mutex_);
            counters_.disconnects++;
            break;
        }
        if (!handleRequest(conn, payload))
            break;
    }
    conn.fd.reset();
    conn.done.store(true, std::memory_order_release);
}

bool
ProofService::handleRequest(Connection &conn,
                            const std::vector<uint8_t> &payload)
{
    const int fd = conn.fd.get();
    const auto frame = decodeRequest(payload);
    if (!frame) {
        // Unknown tag or out-of-range fields: typed rejection, but the
        // framing is still intact, so keep the connection.
        {
            MutexLock lock(stats_mutex_);
            counters_.rejectedBadRequest++;
        }
        UNIZK_COUNTER_ADD("service.rejected_bad_request", 1);
        return writeFrame(fd, encodeError(ErrorCode::BadRequest,
                                          "malformed request"));
    }

    switch (frame->tag) {
    case Tag::Ping:
        return writeFrame(fd, encodePong());

    case Tag::GetStats:
        // Rotation is safe mid-traffic (recording threads never block
        // on it); the gauges are sampled immediately after the window
        // boundary, so they describe the start of the *next* window.
        return writeFrame(fd, encodeStatsResponse(statsWindow()));

    case Tag::Shutdown:
        // Flip the stop flag before acking so a client that sees the
        // ack can rely on stopRequested() being observable.
        inform("unizkd: shutdown requested over protocol");
        requestStop();
        writeFrame(fd, encodeShutdownAck());
        return false;

    case Tag::Prove: {
        if (stopRequested()) {
            MutexLock lock(stats_mutex_);
            counters_.rejectedShutdown++;
            return writeFrame(fd,
                              encodeError(ErrorCode::ShuttingDown,
                                          "service is draining"));
        }
        auto job = std::make_shared<Job>();
        job->request = frame->prove;
        std::future<std::vector<uint8_t>> result =
            job->promise.get_future();
        // admissionDepth is filled in under the queue lock, before a
        // lane can see the job -- writing it after tryPush would race
        // with proverLane reading it.
        switch (queue_->tryPush(job, &job->admissionDepth)) {
        case PushResult::Full: {
            // Bump the counter under the lock, then drop it before the
            // (potentially slow) socket write.
            ReleasableMutexLock lock(stats_mutex_);
            counters_.rejectedQueueFull++;
            lock.release();
            UNIZK_COUNTER_ADD("service.rejected_queue_full", 1);
            return writeFrame(fd,
                              encodeError(ErrorCode::QueueFull,
                                          "job queue at capacity"));
        }
        case PushResult::Closed: {
            MutexLock lock(stats_mutex_);
            counters_.rejectedShutdown++;
            return writeFrame(fd,
                              encodeError(ErrorCode::ShuttingDown,
                                          "service is draining"));
        }
        case PushResult::Ok:
            break;
        }
        UNIZK_OBS_HISTO("service.queue_depth", job->admissionDepth);

        // Closed-loop: wait for the lane, answer, then read the next
        // frame. The future is always fulfilled -- lanes drain the
        // queue even during shutdown. The lane hands back the encoded
        // frame (see Job::promise), so this thread only writes bytes.
        const std::vector<uint8_t> response = result.get();
        if (!writeFrame(fd, response)) {
            // Client vanished mid-request; the proof is discarded.
            MutexLock lock(stats_mutex_);
            counters_.disconnects++;
            return false;
        }
        {
            MutexLock lock(stats_mutex_);
            counters_.requestsCompleted++;
        }
        return true;
    }

    default:
        return writeFrame(fd, encodeError(ErrorCode::BadRequest,
                                          "unexpected response tag"));
    }
}

void
ProofService::proverLane(unsigned lane_id)
{
    while (auto popped = queue_->pop()) {
        const std::shared_ptr<Job> job = *popped;
        const ProveRequest &req = job->request;

        // The latency clock started at admission; everything before
        // this point is queueing.
        const uint64_t queued_ns = static_cast<uint64_t>(
            job->admitted.elapsedSeconds() * 1e9);

        lanes_busy_.fetch_add(1, std::memory_order_relaxed);
        const Stopwatch busy;

        // Declared before the span so the request span (and every
        // nested pipeline span on this thread) carries the trace id.
        // Spans recorded by pool workers do not inherit it -- the id is
        // thread-local -- which DESIGN.md section 6.10 calls out.
        const obs::ScopedTraceId trace(req.traceId);
        {
            UNIZK_SPAN("service/request");

            const FriConfig cfg = requestFriConfig(req);
            const HardwareConfig hw = HardwareConfig::paperDefault();
            const size_t rows = requestRows(req);
            const size_t reps = requestReps(req);

            const Stopwatch proving;
            const AppRunResult result =
                req.protocol == WireProtocol::Plonky2
                    ? runPlonky2App(req.app, rows, reps, cfg, hw,
                                    req.verify)
                    : runStarkyApp(req.app, rows, cfg, hw,
                                   req.verify);
            const uint64_t prove_ns = static_cast<uint64_t>(
                proving.elapsedSeconds() * 1e9);

            ProveResponse response;
            response.verified = result.verified;
            response.queueDepth = job->admissionDepth;
            response.proof = result.proofBlob;
            response.hasServerTiming = req.traceId != 0;
            response.traceId = req.traceId;
            response.laneId = lane_id;
            response.queuedNs = queued_ns;
            response.proveNs = prove_ns;

            // Serialize the proof section first, then sample the total
            // latency: queuedNs + proveNs + serializeNs <= latencyNs
            // holds by construction because the three are disjoint
            // subintervals of [admission, latency sample].
            const Stopwatch serializing;
            const std::vector<uint8_t> proof_section =
                encodeProofSection(response.proof);
            response.serializeNs = static_cast<uint64_t>(
                serializing.elapsedSeconds() * 1e9);
            response.latencyNs = static_cast<uint64_t>(
                job->admitted.elapsedSeconds() * 1e9);

            UNIZK_OBS_HISTO("service.request_latency_ns",
                            response.latencyNs);
            UNIZK_OBS_HISTO("service.queued_ns", queued_ns);
            UNIZK_OBS_HISTO("service.prove_ns", prove_ns);
            UNIZK_COUNTER_ADD("service.requests_completed", 1);
            {
                MutexLock lock(stats_mutex_);
                if (run_stats_.size() < config_.maxStoredRuns) {
                    run_stats_.push_back(toRunStats(
                        result,
                        req.protocol == WireProtocol::Plonky2
                            ? "plonky2"
                            : "starky",
                        globalThreadCount()));
                }
            }
            job->promise.set_value(
                finishProveResponse(response, proof_section));
        }

        UNIZK_COUNTER_ADD(
            "service.lane_busy_ns",
            static_cast<uint64_t>(busy.elapsedSeconds() * 1e9));
        lanes_busy_.fetch_sub(1, std::memory_order_relaxed);
    }
}

} // namespace service
} // namespace unizk
