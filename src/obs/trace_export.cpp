#include "obs/trace_export.h"

#include <algorithm>

#include "obs/json_writer.h"
#include "sim/mappers.h"

namespace unizk {
namespace obs {

void
ChromeTraceBuilder::nameThread(uint32_t pid, uint32_t tid,
                               const std::string &name)
{
    const bool seen = std::any_of(
        thread_names_.begin(), thread_names_.end(),
        [&](const ThreadName &t) {
            return t.pid == pid && t.tid == tid;
        });
    if (!seen)
        thread_names_.push_back({pid, tid, name});
}

void
ChromeTraceBuilder::addSpans(const std::vector<SpanEvent> &spans)
{
    if (spans.empty())
        return;
    if (process_names_.empty() ||
        process_names_.front().first != 1) {
        process_names_.insert(process_names_.begin(),
                              {1, "cpu prover"});
    }
    for (const SpanEvent &s : spans) {
        nameThread(1, s.threadId,
                   "cpu thread " + std::to_string(s.threadId));
        Event e;
        e.name = s.name;
        e.category = "cpu";
        e.tsMicros = static_cast<double>(s.startNs) * 1e-3;
        e.durMicros =
            static_cast<double>(s.endNs - s.startNs) * 1e-3;
        e.pid = 1;
        e.tid = s.threadId;
        e.traceId = s.traceId;
        events_.push_back(std::move(e));
    }
}

void
ChromeTraceBuilder::addSimLane(const std::string &lane_name,
                               const KernelTrace &trace,
                               const HardwareConfig &cfg)
{
    const uint32_t pid = next_sim_pid_++;
    process_names_.push_back({pid, "sim: " + lane_name});
    nameThread(pid, 0, "kernels");

    uint64_t cursor_cycles = 0;
    for (size_t i = 0; i < trace.ops.size(); ++i) {
        const KernelOp &op = trace.ops[i];
        const KernelSim sim = mapKernel(op.payload, cfg);
        const double ts = cfg.cyclesToSeconds(cursor_cycles) * 1e6;
        Event e;
        e.name = op.label.empty() ? kernelPayloadName(op.payload)
                                  : op.label;
        e.category = kernelClassName(sim.cls);
        e.tsMicros = ts;
        e.durMicros = cfg.cyclesToSeconds(sim.cycles) * 1e6;
        e.pid = pid;
        e.tid = 0;
        e.simCycles = sim.cycles;
        events_.push_back(std::move(e));

        // Counter lanes: sample VSA occupancy and outstanding-kernel
        // queue depth at every kernel boundary.
        counter_events_.push_back(
            {"vsa occupancy", ts, pid,
             std::min<uint64_t>(sim.vsasUsed, cfg.numVsas)});
        counter_events_.push_back(
            {"queue depth", ts, pid,
             static_cast<uint64_t>(trace.ops.size() - i)});
        cursor_cycles += sim.cycles;
    }
    // Close both counter tracks at end of lane.
    const double end_ts = cfg.cyclesToSeconds(cursor_cycles) * 1e6;
    counter_events_.push_back({"vsa occupancy", end_ts, pid, 0});
    counter_events_.push_back({"queue depth", end_ts, pid, 0});
}

std::string
ChromeTraceBuilder::build() const
{
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();

    for (const auto &[pid, name] : process_names_) {
        w.beginObject();
        w.kv("name", "process_name");
        w.kv("ph", "M");
        w.kv("pid", static_cast<uint64_t>(pid));
        w.kv("tid", static_cast<uint64_t>(0));
        w.key("args").beginObject();
        w.kv("name", name);
        w.endObject();
        w.endObject();
    }

    for (const ThreadName &t : thread_names_) {
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", static_cast<uint64_t>(t.pid));
        w.kv("tid", static_cast<uint64_t>(t.tid));
        w.key("args").beginObject();
        w.kv("name", t.name);
        w.endObject();
        w.endObject();
    }

    for (const CounterEvent &c : counter_events_) {
        w.beginObject();
        w.kv("name", c.name);
        w.kv("ph", "C");
        w.kv("ts", c.tsMicros);
        w.kv("pid", static_cast<uint64_t>(c.pid));
        w.kv("tid", static_cast<uint64_t>(0));
        w.key("args").beginObject();
        w.kv("value", c.value);
        w.endObject();
        w.endObject();
    }

    for (const Event &e : events_) {
        w.beginObject();
        w.kv("name", e.name);
        w.kv("cat", e.category);
        w.kv("ph", "X");
        w.kv("ts", e.tsMicros);
        w.kv("dur", e.durMicros);
        w.kv("pid", static_cast<uint64_t>(e.pid));
        w.kv("tid", static_cast<uint64_t>(e.tid));
        if (e.simCycles != 0 || e.traceId != 0) {
            w.key("args").beginObject();
            if (e.simCycles != 0)
                w.kv("cycles", e.simCycles);
            if (e.traceId != 0)
                w.kv("traceId", e.traceId);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace obs
} // namespace unizk
