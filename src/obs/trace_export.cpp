#include "obs/trace_export.h"

#include "obs/json_writer.h"
#include "sim/mappers.h"

namespace unizk {
namespace obs {

void
ChromeTraceBuilder::addSpans(const std::vector<SpanEvent> &spans)
{
    if (spans.empty())
        return;
    if (process_names_.empty() ||
        process_names_.front().first != 1) {
        process_names_.insert(process_names_.begin(),
                              {1, "cpu prover"});
    }
    for (const SpanEvent &s : spans) {
        Event e;
        e.name = s.name;
        e.category = "cpu";
        e.tsMicros = static_cast<double>(s.startNs) * 1e-3;
        e.durMicros =
            static_cast<double>(s.endNs - s.startNs) * 1e-3;
        e.pid = 1;
        e.tid = s.threadId;
        events_.push_back(std::move(e));
    }
}

void
ChromeTraceBuilder::addSimLane(const std::string &lane_name,
                               const KernelTrace &trace,
                               const HardwareConfig &cfg)
{
    const uint32_t pid = next_sim_pid_++;
    process_names_.push_back({pid, "sim: " + lane_name});

    uint64_t cursor_cycles = 0;
    for (const KernelOp &op : trace.ops) {
        const KernelSim sim = mapKernel(op.payload, cfg);
        Event e;
        e.name = op.label.empty() ? kernelPayloadName(op.payload)
                                  : op.label;
        e.category = kernelClassName(sim.cls);
        e.tsMicros = cfg.cyclesToSeconds(cursor_cycles) * 1e6;
        e.durMicros = cfg.cyclesToSeconds(sim.cycles) * 1e6;
        e.pid = pid;
        e.tid = 0;
        e.simCycles = sim.cycles;
        events_.push_back(std::move(e));
        cursor_cycles += sim.cycles;
    }
}

std::string
ChromeTraceBuilder::build() const
{
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();

    for (const auto &[pid, name] : process_names_) {
        w.beginObject();
        w.kv("name", "process_name");
        w.kv("ph", "M");
        w.kv("pid", static_cast<uint64_t>(pid));
        w.kv("tid", static_cast<uint64_t>(0));
        w.key("args").beginObject();
        w.kv("name", name);
        w.endObject();
        w.endObject();
    }

    for (const Event &e : events_) {
        w.beginObject();
        w.kv("name", e.name);
        w.kv("cat", e.category);
        w.kv("ph", "X");
        w.kv("ts", e.tsMicros);
        w.kv("dur", e.durMicros);
        w.kv("pid", static_cast<uint64_t>(e.pid));
        w.kv("tid", static_cast<uint64_t>(e.tid));
        if (e.simCycles != 0) {
            w.key("args").beginObject();
            w.kv("cycles", e.simCycles);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace obs
} // namespace unizk
