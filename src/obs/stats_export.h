/**
 * @file
 * Stable machine-readable stats schema ("unizk-stats-v1"): per run, the
 * CPU kernel-time breakdown (Table 1), the full simulator report with
 * per-class cycles / bus vs useful bytes / requests (Tables 3-4), proof
 * size, and the merged obs counters.
 */

#ifndef UNIZK_OBS_STATS_EXPORT_H
#define UNIZK_OBS_STATS_EXPORT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/simulator.h"

namespace unizk {
namespace obs {

/** Everything the stats exporter records about one app run. */
struct RunStats
{
    std::string app;
    std::string protocol; ///< "plonky2" or "starky"
    size_t rows = 0;
    size_t repetitions = 0;
    unsigned threads = 1;
    double cpuSeconds = 0.0;
    KernelTimeBreakdown cpuBreakdown;
    SimReport sim;
    size_t proofBytes = 0;
    bool verified = false;
};

/**
 * Render runs (plus a counter snapshot) as a "unizk-stats-v1" JSON
 * document. The schema is validated by tools/obs/validate_obs_json.py;
 * update both together.
 */
std::string statsToJson(const std::vector<RunStats> &runs,
                        const std::map<std::string, uint64_t> &counters);

} // namespace obs
} // namespace unizk

#endif // UNIZK_OBS_STATS_EXPORT_H
