/**
 * @file
 * Stable machine-readable stats schema ("unizk-stats-v2"): per run, the
 * CPU kernel-time breakdown (Table 1), the full simulator report with
 * per-class cycles / bus vs useful bytes / requests (Tables 3-4), the
 * hardware counters (per-VSA busy/stall/idle, DRAM row-buffer and
 * per-bank traffic, scratchpad pressure) with the occupancy timeline,
 * proof size, and the merged obs counters and histograms. v1 documents
 * (no hwCounters / timeline / histograms) remain valid per the
 * validator; the emitters write v2.
 */

#ifndef UNIZK_OBS_STATS_EXPORT_H
#define UNIZK_OBS_STATS_EXPORT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace unizk {
namespace obs {

/** Everything the stats exporter records about one app run. */
struct RunStats
{
    std::string app;
    std::string protocol; ///< "plonky2" or "starky"
    size_t rows = 0;
    size_t repetitions = 0;
    unsigned threads = 1;
    double cpuSeconds = 0.0;
    KernelTimeBreakdown cpuBreakdown;
    SimReport sim;
    size_t proofBytes = 0;
    bool verified = false;
};

/**
 * Render runs (plus counter and histogram snapshots) as a
 * "unizk-stats-v2" JSON document. Also embeds the span-buffer
 * occupancy/drop accounting (obs::spanBufferStats) under
 * "spanBuffers". The schema is validated by
 * tools/obs/validate_obs_json.py; update both together.
 */
std::string
statsToJson(const std::vector<RunStats> &runs,
            const std::map<std::string, uint64_t> &counters,
            const std::map<std::string, HistogramData> &histograms = {});

/**
 * Render one window rotation (obs::snapshotDelta) as a single-line
 * compact "unizk-stats-v3" JSON record, suitable for appending to a
 * JSONL stream (unizkd --stats-windows). Carries the window identity
 * (sequence, start/end), per-name {delta, cumulative} for counters
 * and histograms, and the span-buffer stats captured at rotation.
 * Validated by tools/obs/validate_obs_json.py --kind windows.
 */
std::string snapshotToJson(const StatsSnapshot &snap);

} // namespace obs
} // namespace unizk

#endif // UNIZK_OBS_STATS_EXPORT_H
