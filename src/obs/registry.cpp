#include "obs/registry.h"

namespace unizk {
namespace obs {
namespace internal {

Registry &
Registry::instance()
{
    // Intentionally leaked (never destroyed): span destructors and
    // counter adds can run during static teardown of other TUs, and a
    // destroyed registry would turn those into use-after-free.
    static Registry *const registry = new Registry();
    return *registry;
}

} // namespace internal
} // namespace obs
} // namespace unizk
