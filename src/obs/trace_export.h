/**
 * @file
 * Chrome trace_event exporter: turns recorded obs spans into "X"
 * (complete) events on per-thread CPU lanes, and reconstructs a
 * simulated-timeline lane from a KernelTrace by replaying each kernel
 * op through the simulator's mappers. Every lane carries
 * process_name/thread_name "M" metadata so Perfetto labels it, and the
 * sim lanes add "C" counter series (VSA occupancy, kernel queue depth)
 * above the kernel track. Open the output in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing.
 */

#ifndef UNIZK_OBS_TRACE_EXPORT_H
#define UNIZK_OBS_TRACE_EXPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "sim/hw_config.h"
#include "trace/kernel_trace.h"

namespace unizk {
namespace obs {

/**
 * Accumulates trace events and renders the Chrome trace JSON document.
 * CPU spans go under process id 1 ("cpu prover", one tid per pool
 * thread); each simulated lane gets its own process id from 2 upward.
 */
class ChromeTraceBuilder
{
  public:
    /** Add recorded CPU spans (from obs::drainSpans()). */
    void addSpans(const std::vector<SpanEvent> &spans);

    /**
     * Add one simulated-kernel timeline lane: ops laid end to end at
     * their modeled cycle counts, converted to wall time via @p cfg.
     */
    void addSimLane(const std::string &lane_name,
                    const KernelTrace &trace, const HardwareConfig &cfg);

    /** Render the {"traceEvents": [...]} document. */
    std::string build() const;

  private:
    struct Event
    {
        std::string name;
        std::string category;
        double tsMicros = 0.0;
        double durMicros = 0.0;
        uint32_t pid = 0;
        uint32_t tid = 0;
        uint64_t simCycles = 0; ///< sim lanes only (0 on CPU spans)
        uint64_t traceId = 0;   ///< request trace id (0 = untagged)
    };

    /** One "C" (counter) sample on a sim lane. */
    struct CounterEvent
    {
        std::string name;
        double tsMicros = 0.0;
        uint32_t pid = 0;
        uint64_t value = 0;
    };

    /** One "M" thread_name record (pid, tid, display name). */
    struct ThreadName
    {
        uint32_t pid = 0;
        uint32_t tid = 0;
        std::string name;
    };

    void nameThread(uint32_t pid, uint32_t tid,
                    const std::string &name);

    std::vector<Event> events_;
    std::vector<CounterEvent> counter_events_;
    std::vector<std::pair<uint32_t, std::string>> process_names_;
    std::vector<ThreadName> thread_names_;
    uint32_t next_sim_pid_ = 2;
};

} // namespace obs
} // namespace unizk

#endif // UNIZK_OBS_TRACE_EXPORT_H
