/**
 * @file
 * Collapsed-stack ("folded") exporter: turns recorded obs spans into
 * the `parent;child;grandchild <value>` line format consumed by
 * flamegraph.pl, inferno, and speedscope. One line per distinct span
 * stack; the value is the stack's *self* time in nanoseconds (span
 * durations minus the durations of their direct children), so the
 * flamegraph's box widths add up to real wall time per thread.
 */

#ifndef UNIZK_OBS_FOLDED_EXPORT_H
#define UNIZK_OBS_FOLDED_EXPORT_H

#include <string>
#include <vector>

#include "obs/obs.h"

namespace unizk {
namespace obs {

/**
 * Render spans (from drainSpans(); any order) as folded stacks, merged
 * across threads and sorted lexicographically for deterministic output.
 * Stacks are rebuilt from each thread's (startNs, depth) ordering, so
 * the result is exact even for recursive span names.
 */
std::string spansToFolded(const std::vector<SpanEvent> &spans);

} // namespace obs
} // namespace unizk

#endif // UNIZK_OBS_FOLDED_EXPORT_H
