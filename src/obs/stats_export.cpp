#include "obs/stats_export.h"

#include <utility>

#include "obs/json_writer.h"

namespace unizk {
namespace obs {

namespace {

void
writeBreakdown(JsonWriter &w, const KernelTimeBreakdown &b)
{
    w.beginObject();
    w.kv("totalSeconds", b.total());
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        const auto c = static_cast<KernelClass>(i);
        w.kv(kernelClassName(c), b.seconds(c));
    }
    w.endObject();
}

void
writeHwCounters(JsonWriter &w, const HwCounters &hw)
{
    w.beginObject();

    w.key("vsa").beginObject();
    uint64_t total_busy = 0, total_stall = 0, total_idle = 0;
    w.key("busyCycles").beginArray();
    for (const VsaCycles &v : hw.perVsa) {
        w.value(v.busy);
        total_busy += v.busy;
    }
    w.endArray();
    w.key("stallCycles").beginArray();
    for (const VsaCycles &v : hw.perVsa) {
        w.value(v.stall);
        total_stall += v.stall;
    }
    w.endArray();
    w.key("idleCycles").beginArray();
    for (const VsaCycles &v : hw.perVsa) {
        w.value(v.idle);
        total_idle += v.idle;
    }
    w.endArray();
    w.kv("totalBusy", total_busy);
    w.kv("totalStall", total_stall);
    w.kv("totalIdle", total_idle);
    w.endObject();

    w.key("dram").beginObject();
    w.kv("rowHits", hw.dramRowHits);
    w.kv("rowMisses", hw.dramRowMisses);
    w.kv("bankConflicts", hw.dramBankConflicts);
    w.key("bankBytes").beginArray();
    for (const uint64_t b : hw.dramBankBytes)
        w.value(b);
    w.endArray();
    w.endObject();

    w.key("scratchpad").beginObject();
    w.kv("highWaterBytes", hw.scratchpadHighWaterBytes);
    w.kv("evictions", hw.scratchpadEvictions);
    w.endObject();

    w.endObject();
}

void
writeTimeline(JsonWriter &w, const SimReport &sim)
{
    w.beginObject();
    w.kv("samplePeriodCycles", sim.timelineSamplePeriod);
    w.key("samples").beginArray();
    for (const TimelineSample &s : sim.timeline) {
        w.beginObject();
        w.kv("cycle", s.cycle);
        w.kv("vsasBusy", static_cast<uint64_t>(s.vsasBusy));
        w.kv("queueDepth", s.queueDepth);
        w.kv("class", kernelClassName(s.cls));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeSimReport(JsonWriter &w, const SimReport &sim)
{
    w.beginObject();
    w.kv("totalCycles", sim.totalCycles);
    w.kv("seconds", sim.seconds());
    w.kv("readRequests", sim.totalReadRequests());
    w.kv("writeRequests", sim.totalWriteRequests());

    w.key("config").beginObject();
    w.kv("numVsas", static_cast<uint64_t>(sim.config.numVsas));
    w.kv("clockGhz", sim.config.clockGhz);
    w.kv("peakMemBytesPerCycle",
         static_cast<uint64_t>(sim.config.peakMemBytesPerCycle));
    w.endObject();

    w.key("perClass").beginObject();
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        const auto c = static_cast<KernelClass>(i);
        const ClassStats &s = sim.classStats(c);
        w.key(kernelClassName(c)).beginObject();
        w.kv("cycles", s.cycles);
        w.kv("computeCycles", s.computeCycles);
        w.kv("memCycles", s.memCycles);
        w.kv("busBytes", s.busBytes);
        w.kv("usefulBytes", s.usefulBytes);
        w.kv("readRequests", s.readRequests);
        w.kv("writeRequests", s.writeRequests);
        w.kv("kernels", s.kernels);
        w.kv("cycleFraction", sim.cycleFraction(c));
        w.kv("memUtilization", sim.memUtilization(c));
        w.kv("usefulFraction", sim.usefulFraction(c));
        w.kv("vsaUtilization", sim.vsaUtilization(c));
        w.endObject();
    }
    w.endObject();

    w.key("hwCounters");
    writeHwCounters(w, sim.hw);

    w.key("timeline");
    writeTimeline(w, sim);

    w.endObject();
}

/** One HistogramData as {count,sum,min,max,buckets:[{lo,hi,count}]}. */
void
writeHistogramData(JsonWriter &w, const HistogramData &data)
{
    w.beginObject();
    w.kv("count", data.count);
    w.kv("sum", data.sum);
    w.kv("min", data.min);
    w.kv("max", data.max);
    w.key("buckets").beginArray();
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
        if (data.buckets[i] == 0)
            continue;
        const auto [lo, hi] = bucketRange(i);
        w.beginObject();
        w.kv("lo", lo);
        w.kv("hi", hi);
        w.kv("count", data.buckets[i]);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeSpanBufferStats(JsonWriter &w, const SpanBufferStats &spans)
{
    w.beginObject();
    w.kv("dropped", spans.dropped);
    w.kv("capPerThread", spans.capPerThread);
    w.key("perThread").beginArray();
    for (const SpanBufferInfo &t : spans.perThread) {
        w.beginObject();
        w.kv("threadId", static_cast<uint64_t>(t.threadId));
        w.kv("buffered", t.buffered);
        w.kv("highWater", t.highWater);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

std::string
statsToJson(const std::vector<RunStats> &runs,
            const std::map<std::string, uint64_t> &counters,
            const std::map<std::string, HistogramData> &histograms)
{
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "unizk-stats-v2");

    w.key("runs").beginArray();
    for (const RunStats &r : runs) {
        w.beginObject();
        w.kv("app", r.app);
        w.kv("protocol", r.protocol);
        w.kv("rows", static_cast<uint64_t>(r.rows));
        w.kv("repetitions", static_cast<uint64_t>(r.repetitions));
        w.kv("threads", static_cast<uint64_t>(r.threads));

        w.key("cpu").beginObject();
        w.kv("totalSeconds", r.cpuSeconds);
        w.key("breakdown");
        writeBreakdown(w, r.cpuBreakdown);
        w.endObject();

        w.key("proof").beginObject();
        w.kv("bytes", static_cast<uint64_t>(r.proofBytes));
        w.kv("verified", r.verified);
        w.endObject();

        w.key("sim");
        writeSimReport(w, r.sim);

        w.endObject();
    }
    w.endArray();

    w.key("counters").beginObject();
    for (const auto &[name, value] : counters)
        w.kv(name, value);
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, data] : histograms) {
        w.key(name);
        writeHistogramData(w, data);
    }
    w.endObject();

    w.key("spanBuffers");
    writeSpanBufferStats(w, spanBufferStats());

    w.endObject();
    return w.str();
}

std::string
snapshotToJson(const StatsSnapshot &snap)
{
    JsonWriter w(/*compact=*/true);
    w.beginObject();
    w.kv("schema", "unizk-stats-v3");
    w.kv("sequence", snap.sequence);
    w.kv("windowStartNs", snap.windowStartNs);
    w.kv("windowEndNs", snap.windowEndNs);

    w.key("counters").beginObject();
    for (const auto &[name, window] : snap.counters) {
        w.key(name).beginObject();
        w.kv("delta", window.delta);
        w.kv("cumulative", window.cumulative);
        w.endObject();
    }
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, window] : snap.histograms) {
        w.key(name).beginObject();
        w.key("delta");
        writeHistogramData(w, window.delta);
        w.key("cumulative");
        writeHistogramData(w, window.cumulative);
        w.endObject();
    }
    w.endObject();

    w.key("spanBuffers");
    writeSpanBufferStats(w, snap.spans);

    w.endObject();
    return w.str();
}

} // namespace obs
} // namespace unizk
