#include "obs/stats_export.h"

#include "obs/json_writer.h"

namespace unizk {
namespace obs {

namespace {

void
writeBreakdown(JsonWriter &w, const KernelTimeBreakdown &b)
{
    w.beginObject();
    w.kv("totalSeconds", b.total());
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        const auto c = static_cast<KernelClass>(i);
        w.kv(kernelClassName(c), b.seconds(c));
    }
    w.endObject();
}

void
writeSimReport(JsonWriter &w, const SimReport &sim)
{
    w.beginObject();
    w.kv("totalCycles", sim.totalCycles);
    w.kv("seconds", sim.seconds());
    w.kv("readRequests", sim.totalReadRequests());
    w.kv("writeRequests", sim.totalWriteRequests());

    w.key("config").beginObject();
    w.kv("numVsas", static_cast<uint64_t>(sim.config.numVsas));
    w.kv("clockGhz", sim.config.clockGhz);
    w.kv("peakMemBytesPerCycle",
         static_cast<uint64_t>(sim.config.peakMemBytesPerCycle));
    w.endObject();

    w.key("perClass").beginObject();
    for (size_t i = 0; i < static_cast<size_t>(KernelClass::NumClasses);
         ++i) {
        const auto c = static_cast<KernelClass>(i);
        const ClassStats &s = sim.classStats(c);
        w.key(kernelClassName(c)).beginObject();
        w.kv("cycles", s.cycles);
        w.kv("computeCycles", s.computeCycles);
        w.kv("memCycles", s.memCycles);
        w.kv("busBytes", s.busBytes);
        w.kv("usefulBytes", s.usefulBytes);
        w.kv("readRequests", s.readRequests);
        w.kv("writeRequests", s.writeRequests);
        w.kv("kernels", s.kernels);
        w.kv("cycleFraction", sim.cycleFraction(c));
        w.kv("memUtilization", sim.memUtilization(c));
        w.kv("usefulFraction", sim.usefulFraction(c));
        w.kv("vsaUtilization", sim.vsaUtilization(c));
        w.endObject();
    }
    w.endObject();

    w.endObject();
}

} // namespace

std::string
statsToJson(const std::vector<RunStats> &runs,
            const std::map<std::string, uint64_t> &counters)
{
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "unizk-stats-v1");

    w.key("runs").beginArray();
    for (const RunStats &r : runs) {
        w.beginObject();
        w.kv("app", r.app);
        w.kv("protocol", r.protocol);
        w.kv("rows", static_cast<uint64_t>(r.rows));
        w.kv("repetitions", static_cast<uint64_t>(r.repetitions));
        w.kv("threads", static_cast<uint64_t>(r.threads));

        w.key("cpu").beginObject();
        w.kv("totalSeconds", r.cpuSeconds);
        w.key("breakdown");
        writeBreakdown(w, r.cpuBreakdown);
        w.endObject();

        w.key("proof").beginObject();
        w.kv("bytes", static_cast<uint64_t>(r.proofBytes));
        w.kv("verified", r.verified);
        w.endObject();

        w.key("sim");
        writeSimReport(w, r.sim);

        w.endObject();
    }
    w.endArray();

    w.key("counters").beginObject();
    for (const auto &[name, value] : counters)
        w.kv(name, value);
    w.endObject();

    w.endObject();
    return w.str();
}

} // namespace obs
} // namespace unizk
