#include "obs/folded_export.h"

#include <algorithm>
#include <map>

namespace unizk {
namespace obs {

std::string
spansToFolded(const std::vector<SpanEvent> &spans)
{
    std::vector<SpanEvent> sorted = spans;
    // Parents start no later than their children and sit at a smaller
    // depth, so (threadId, startNs, depth) order visits every ancestor
    // before its descendants even when the clock ties.
    std::sort(sorted.begin(), sorted.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.threadId != b.threadId)
                      return a.threadId < b.threadId;
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.depth < b.depth;
              });

    std::vector<int64_t> self_ns(sorted.size());
    std::vector<std::string> paths(sorted.size());
    std::vector<size_t> stack; // index of the live span per depth
    uint32_t stack_thread = 0;

    for (size_t i = 0; i < sorted.size(); ++i) {
        const SpanEvent &e = sorted[i];
        if (i == 0 || e.threadId != stack_thread) {
            stack.clear();
            stack_thread = e.threadId;
        }
        // Spans deeper than or at our depth have closed by now.
        const size_t depth =
            std::min<size_t>(e.depth, stack.size());
        stack.resize(depth);

        const int64_t dur =
            static_cast<int64_t>(e.endNs - e.startNs);
        self_ns[i] = dur;
        if (!stack.empty()) {
            const size_t parent = stack.back();
            self_ns[parent] -= dur;
            paths[i] = paths[parent] + ";" + e.name;
        } else {
            paths[i] = e.name;
        }
        stack.push_back(i);
    }

    std::map<std::string, int64_t> folded;
    for (size_t i = 0; i < sorted.size(); ++i)
        folded[paths[i]] += std::max<int64_t>(self_ns[i], 0);

    std::string out;
    for (const auto &[path, ns] : folded) {
        out += path;
        out += ' ';
        out += std::to_string(ns);
        out += '\n';
    }
    return out;
}

} // namespace obs
} // namespace unizk
