/**
 * @file
 * Internal storage of the obs subsystem: the per-thread span buffers,
 * counter blocks and histogram blocks, the name registries, and the
 * window-rotation bookkeeping behind obs::snapshotDelta().
 *
 * This header is private to src/obs. Everything outside src/obs must
 * go through the snapshot APIs in obs/obs.h (counterSnapshot,
 * histogramSnapshot, snapshotDelta, spanBufferStats, drainSpans) --
 * the lint rule `obs-registry-direct` rejects direct includes and
 * `obs::internal` references elsewhere. The rotation state below
 * (baselines, sequence, window start) is only consistent when every
 * consumer rotates through snapshotDelta(); an exporter iterating the
 * blocks directly would observe totals that a concurrent rotation is
 * in the middle of re-baselining.
 */

#ifndef UNIZK_OBS_REGISTRY_H
#define UNIZK_OBS_REGISTRY_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "obs/obs.h"

namespace unizk {
namespace obs {
namespace internal {

constexpr size_t kMaxCounters = 128;
constexpr size_t kMaxHistograms = 64;

/** Per-thread span buffer; owned by the registry, written by one
 *  thread. The events vector itself may only be touched by its owner
 *  or, at quiescent points, under the registry mutex (drainSpans /
 *  resetAll); live pollers read the mirrored atomics instead. */
struct SpanBuffer
{
    uint32_t threadId = 0;
    std::vector<SpanEvent> events;
    /** events.size(), mirrored with relaxed stores by the owning
     *  thread so spanBufferStats() can report occupancy without
     *  racing the vector. */
    std::atomic<uint64_t> buffered{0};
    /** Largest occupancy observed since the last resetAll(). */
    std::atomic<uint64_t> highWater{0};
};

/**
 * Per-thread counter block. The owning thread does relaxed
 * fetch_adds; snapshot readers do relaxed loads, so concurrent
 * snapshots observe a consistent-enough value without any data race.
 */
struct CounterBlock
{
    std::array<std::atomic<uint64_t>, kMaxCounters> values{};
};

/**
 * Per-thread histogram block: one bucket array plus sum/count/min/max
 * per registered histogram. Same ownership discipline as CounterBlock
 * (owning thread writes relaxed, snapshot readers load relaxed).
 *
 * min/max are cumulative watermarks; windowMin/windowMax cover only
 * the currently open snapshot window and are consumed (exchanged back
 * to their empty values) by snapshotDelta(), so a per-window delta can
 * report real extremes instead of inheriting a warmup outlier from an
 * earlier window.
 */
struct HistoSlot
{
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> windowMin{UINT64_MAX};
    std::atomic<uint64_t> windowMax{0};
};

struct HistoBlock
{
    std::array<HistoSlot, kMaxHistograms> slots{};
};

/**
 * The process-wide obs registry. A leaked singleton: thread-local
 * blocks and function-local static Counter/Histogram handles may fire
 * during static teardown, so the registry must outlive every other
 * object with static storage duration.
 */
class Registry
{
  public:
    static Registry &instance();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Guards the registries (buffer/block lists and name tables) and
     *  the window-rotation state. */
    Mutex mutex;
    std::vector<std::unique_ptr<SpanBuffer>> spanBuffers
        UNIZK_GUARDED_BY(mutex);
    std::vector<std::unique_ptr<CounterBlock>> counterBlocks
        UNIZK_GUARDED_BY(mutex);
    std::vector<std::unique_ptr<HistoBlock>> histoBlocks
        UNIZK_GUARDED_BY(mutex);
    std::vector<std::string> counterNames UNIZK_GUARDED_BY(mutex);
    std::vector<std::string> histogramNames UNIZK_GUARDED_BY(mutex);

    /**
     * Window-rotation state for snapshotDelta(): the cumulative totals
     * published by the previous rotation (per name), the monotonic
     * window sequence number, and the start timestamp of the window
     * currently open. Updated atomically with respect to other
     * rotations because every rotation holds the registry mutex --
     * which is why consumers must not iterate the blocks directly.
     */
    uint64_t snapshotSequence UNIZK_GUARDED_BY(mutex) = 0;
    uint64_t windowStartNs UNIZK_GUARDED_BY(mutex) = 0;
    std::map<std::string, uint64_t> counterBaseline
        UNIZK_GUARDED_BY(mutex);
    std::map<std::string, HistogramData> histogramBaseline
        UNIZK_GUARDED_BY(mutex);

    // Relaxed fetch_add is sufficient: the id only needs to be unique,
    // no data is published under it.
    std::atomic<uint32_t> nextThreadId{0};

    /** Spans dropped by full buffers; mirrors the "obs.spans_dropped"
     *  counter so pollers get the number without a name lookup. */
    std::atomic<uint64_t> spansDropped{0};
    /** Set once the first drop has been logged (rate-limits the warn). */
    std::atomic<bool> dropWarned{false};

    /**
     * Epoch of the nowNs() clock. Written only by resetAll() (a
     * quiescent-point operation by contract) and read without the
     * mutex on every span hit, mirroring the pre-registry behaviour.
     */
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();

  private:
    Registry() = default;
};

} // namespace internal
} // namespace obs
} // namespace unizk

#endif // UNIZK_OBS_REGISTRY_H
