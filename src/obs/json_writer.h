/**
 * @file
 * Minimal streaming JSON writer (no external dependency). Produces
 * deterministic, pretty-printed output for the obs exporters; commas
 * and indentation are managed by a container stack.
 */

#ifndef UNIZK_OBS_JSON_WRITER_H
#define UNIZK_OBS_JSON_WRITER_H

#include <cstdint>
#include <string>
#include <vector>

namespace unizk {
namespace obs {

class JsonWriter
{
  public:
    /** Pretty-printed by default; @p compact emits a single line with
     *  no whitespace (for JSONL streams like the unizkd window log). */
    explicit JsonWriter(bool compact = false) : compact_(compact) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit a key inside an object; follow with a value or container. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(double v);
    JsonWriter &value(bool v);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** Finished document (all containers must be closed). */
    const std::string &str() const;

    /** JSON-escape @p s (quotes not included). */
    static std::string escape(const std::string &s);

  private:
    void beforeValue();
    void indent();

    std::string out_;
    // One frame per open container: true once the first element has
    // been written (so later elements get a leading comma).
    std::vector<bool> has_element_;
    bool pending_key_ = false;
    bool compact_ = false;
};

/** Write @p contents to @p path; returns false on I/O failure. */
bool writeFile(const std::string &path, const std::string &contents);

/** Append @p contents to @p path (creating it); false on I/O failure. */
bool appendFile(const std::string &path, const std::string &contents);

} // namespace obs
} // namespace unizk

#endif // UNIZK_OBS_JSON_WRITER_H
