#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace unizk {
namespace obs {

void
JsonWriter::beforeValue()
{
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!has_element_.empty()) {
        if (has_element_.back())
            out_ += ",";
        has_element_.back() = true;
        if (!compact_) {
            out_ += "\n";
            indent();
        }
    }
}

void
JsonWriter::indent()
{
    out_.append(2 * has_element_.size(), ' ');
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += "{";
    has_element_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    unizk_assert(!has_element_.empty());
    const bool had = has_element_.back();
    has_element_.pop_back();
    if (had && !compact_) {
        out_ += "\n";
        indent();
    }
    out_ += "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += "[";
    has_element_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    unizk_assert(!has_element_.empty());
    const bool had = has_element_.back();
    has_element_.pop_back();
    if (had && !compact_) {
        out_ += "\n";
        indent();
    }
    out_ += "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    unizk_assert(!has_element_.empty());
    if (has_element_.back())
        out_ += ",";
    has_element_.back() = true;
    if (compact_) {
        out_ += "\"" + escape(name) + "\":";
    } else {
        out_ += "\n";
        indent();
        out_ += "\"" + escape(name) + "\": ";
    }
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    beforeValue();
    out_ += "\"" + escape(s) + "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    // JSON has no NaN/Infinity literals; "%g" would emit "nan"/"inf"
    // and corrupt the document (e.g. a utilization dividing by zero).
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    std::string text(buf);
    // Bare integers like "3" are valid JSON numbers, but keep the
    // output self-describing: mark doubles with a decimal point.
    if (text.find_first_of(".eE") == std::string::npos &&
        text.find_first_not_of("-0123456789") == std::string::npos) {
        text += ".0";
    }
    out_ += text;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

const std::string &
JsonWriter::str() const
{
    unizk_assert(has_element_.empty());
    return out_;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << contents;
    return static_cast<bool>(f);
}

bool
appendFile(const std::string &path, const std::string &contents)
{
    std::ofstream f(path, std::ios::binary | std::ios::app);
    if (!f)
        return false;
    f << contents;
    return static_cast<bool>(f);
}

} // namespace obs
} // namespace unizk
