/**
 * @file
 * Prometheus-style text exposition for the obs counters and
 * histograms (the "text-based exposition format", version 0.0.4):
 * counters render as monotonic `_total` samples, log2-bucket
 * histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
 * `_count`, each family preceded by `# HELP` / `# TYPE` lines.
 *
 * Values are always the *cumulative* totals -- Prometheus semantics
 * require monotonic counters and let the scraper compute rates --
 * which is exactly the cumulative side of obs::snapshotDelta() (or a
 * plain counterSnapshot()/histogramSnapshot()). The grammar emitted
 * here is validated by tools/obs/validate_exposition.py; update both
 * together (DESIGN.md section 6.10 documents the mapping).
 */

#ifndef UNIZK_OBS_EXPOSITION_H
#define UNIZK_OBS_EXPOSITION_H

#include <cstdint>
#include <map>
#include <string>

#include "obs/obs.h"

namespace unizk {
namespace obs {

/**
 * Map an obs metric name ("service.request_latency_ns") to a valid
 * Prometheus metric name ("unizk_service_request_latency_ns"):
 * prefix "unizk_", every character outside [a-zA-Z0-9_] becomes '_'.
 */
std::string promMetricName(const std::string &raw);

/**
 * Render every counter and histogram as one exposition document.
 * Counter names gain a "_total" suffix per convention; histogram
 * bucket edges are the inclusive upper bounds of the log2 buckets
 * (so `le` values are 0, 1, 3, 7, ... 2^i - 1), closed by `+Inf`.
 */
std::string
renderExposition(const std::map<std::string, uint64_t> &counters,
                 const std::map<std::string, HistogramData> &histograms);

} // namespace obs
} // namespace unizk

#endif // UNIZK_OBS_EXPOSITION_H
