/**
 * @file
 * Observability core: RAII span tracer with per-thread lock-free
 * buffers (safe inside parallelFor workers), a named-counter registry
 * with per-thread accumulator blocks, and log2-bucket histograms for
 * duration / size distributions.
 *
 * Design goals (see DESIGN.md section 6.4):
 *  - Zero overhead when disabled: one relaxed atomic load per span /
 *    counter hit at runtime, or compiled out entirely with
 *    UNIZK_OBS_DISABLE (CMake option UNIZK_DISABLE_OBS).
 *  - No effect on proof bytes: instrumentation only reads the clock
 *    and appends to thread-local buffers; determinism tests cover
 *    byte-identical proofs with tracing on and off.
 *  - Collection is lock-free on the hot path: each thread owns a span
 *    buffer and a counter block, registered once under a mutex and
 *    appended to without synchronization. Snapshots (drainSpans /
 *    counterSnapshot) must only run at quiescent points -- after all
 *    parallel regions have joined, which the thread pool's completion
 *    handshake already sequences.
 */

#ifndef UNIZK_OBS_OBS_H
#define UNIZK_OBS_OBS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace unizk {
namespace obs {

/** One closed span, timestamped in nanoseconds since the obs epoch. */
struct SpanEvent
{
    const char *name = nullptr; ///< static string (never freed)
    /**
     * Name of the innermost span open on the same thread when this one
     * started (nullptr for roots). Together with depth this lets
     * exporters rebuild the full per-thread call stack.
     */
    const char *parent = nullptr;
    uint64_t startNs = 0;
    uint64_t endNs = 0;
    uint32_t threadId = 0; ///< small stable per-thread id
    uint32_t depth = 0;    ///< nesting depth on the owning thread
};

/**
 * Master switch for spans and counters. When off (the default) every
 * instrumentation hit is a single relaxed atomic load and an early
 * return. Enabling resets nothing; pair with resetAll() for a clean
 * capture window.
 */
void setEnabled(bool enabled);
bool enabled();

/** Nanoseconds since the current obs epoch (monotonic clock). */
uint64_t nowNs();

/**
 * Move all recorded spans out of the per-thread buffers, sorted by
 * (threadId, startNs). Must only be called at a quiescent point.
 */
std::vector<SpanEvent> drainSpans();

/** Merged name -> value view of every registered counter. */
std::map<std::string, uint64_t> counterSnapshot();

/** Number of log2 buckets: bucket i counts values of bit-width i
 *  (bucket 0 holds the value 0, bucket i >= 1 the range
 *  [2^(i-1), 2^i - 1]). */
constexpr size_t kHistogramBuckets = 65;

/** Merged view of one named histogram. */
struct HistogramData
{
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0; ///< 0 when count == 0
    uint64_t max = 0;
    std::array<uint64_t, kHistogramBuckets> buckets{};
};

/**
 * Merged name -> data view of every registered histogram. Like
 * counterSnapshot(), safe to call concurrently with recording; exact
 * only at quiescent points.
 */
std::map<std::string, HistogramData> histogramSnapshot();

/**
 * Approximate @p q quantile (0 <= q <= 1) of a log2-bucket histogram,
 * by linear interpolation inside the bucket holding the quantile rank.
 * With power-of-two buckets the estimate is within 2x of the true
 * value, which is the right fidelity for p50/p99 service-latency
 * reporting. Returns 0 when the histogram is empty.
 */
double histogramQuantile(const HistogramData &data, double q);

/**
 * Cap on spans buffered per thread between drains. Long-running
 * processes (the unizkd service) record spans indefinitely without a
 * quiescent point to drain at; once a thread's buffer is full further
 * spans are counted in "obs.spans_dropped" instead of buffered, so
 * memory stays bounded while histograms and counters keep recording.
 */
constexpr size_t kMaxBufferedSpansPerThread = size_t{1} << 20;

/** Clear spans, counters and histograms; restart the epoch clock. */
void resetAll();

/**
 * Mark the warmup -> measured boundary: discard everything recorded so
 * far (spans, counters, histograms) so setup and warmup work cannot
 * bleed into exported artifacts. No-op when obs is disabled. Like
 * drainSpans(), call only at a quiescent point.
 */
void resetForMeasurement();

/**
 * RAII span. Construct via the UNIZK_SPAN macro with a static string;
 * the constructor samples the clock only when tracing is enabled, and
 * the destructor appends one SpanEvent to the calling thread's buffer.
 *
 * Open spans form a per-thread stack: the constructor pushes, the
 * destructor pops (including during exception unwinding, since spans
 * are scoped), so every recorded event carries its parent's name and
 * its depth on the stack. Closing also feeds the built-in
 * "obs.span_duration_ns" histogram.
 */
class Span
{
  public:
    explicit Span(const char *name);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_ = nullptr; ///< nullptr when tracing was disabled
    const char *parent_ = nullptr;
    uint64_t start_ns_ = 0;
    uint32_t depth_ = 0;
};

/**
 * Handle to one named counter. Registration (the constructor) takes a
 * mutex; add() is a relaxed fetch_add on the calling thread's block.
 * Intended use is one function-local static per call site (see
 * UNIZK_COUNTER_ADD).
 */
class Counter
{
  public:
    explicit Counter(const char *name);

    void add(uint64_t delta);

  private:
    size_t id_;
};

/**
 * Handle to one named log2-bucket histogram. Registration takes a
 * mutex; record() touches only the calling thread's block (relaxed
 * atomics), so it is safe inside parallelFor workers. Intended use is
 * one function-local static per call site (see UNIZK_OBS_HISTO).
 */
class Histogram
{
  public:
    explicit Histogram(const char *name);

    void record(uint64_t value);

  private:
    size_t id_;
};

} // namespace obs
} // namespace unizk

#if defined(UNIZK_OBS_DISABLE)

#define UNIZK_SPAN(name)                                                  \
    do {                                                                  \
    } while (false)
#define UNIZK_COUNTER_ADD(name, delta)                                    \
    do {                                                                  \
    } while (false)
#define UNIZK_OBS_HISTO(name, value)                                      \
    do {                                                                  \
    } while (false)

#else

#define UNIZK_OBS_CONCAT2(a, b) a##b
#define UNIZK_OBS_CONCAT(a, b) UNIZK_OBS_CONCAT2(a, b)

/** Open a span covering the rest of the enclosing scope. */
#define UNIZK_SPAN(name)                                                  \
    const ::unizk::obs::Span UNIZK_OBS_CONCAT(unizk_obs_span_,            \
                                              __LINE__)(name)

/** Bump the named counter by @p delta (no-op while obs is disabled). */
#define UNIZK_COUNTER_ADD(name, delta)                                    \
    do {                                                                  \
        static ::unizk::obs::Counter UNIZK_OBS_CONCAT(unizk_obs_ctr_,     \
                                                      __LINE__)(name);    \
        UNIZK_OBS_CONCAT(unizk_obs_ctr_, __LINE__)                        \
            .add(static_cast<uint64_t>(delta));                           \
    } while (false)

/** Record @p value into the named log2-bucket histogram. */
#define UNIZK_OBS_HISTO(name, value)                                      \
    do {                                                                  \
        static ::unizk::obs::Histogram UNIZK_OBS_CONCAT(                  \
            unizk_obs_histo_, __LINE__)(name);                            \
        UNIZK_OBS_CONCAT(unizk_obs_histo_, __LINE__)                      \
            .record(static_cast<uint64_t>(value));                        \
    } while (false)

#endif // UNIZK_OBS_DISABLE

#endif // UNIZK_OBS_OBS_H
