/**
 * @file
 * Observability core: RAII span tracer with per-thread lock-free
 * buffers (safe inside parallelFor workers), a named-counter registry
 * with per-thread accumulator blocks, and log2-bucket histograms for
 * duration / size distributions.
 *
 * Design goals (see DESIGN.md section 6.4):
 *  - Zero overhead when disabled: one relaxed atomic load per span /
 *    counter hit at runtime, or compiled out entirely with
 *    UNIZK_OBS_DISABLE (CMake option UNIZK_DISABLE_OBS).
 *  - No effect on proof bytes: instrumentation only reads the clock
 *    and appends to thread-local buffers; determinism tests cover
 *    byte-identical proofs with tracing on and off.
 *  - Collection is lock-free on the hot path: each thread owns a span
 *    buffer and a counter block, registered once under a mutex and
 *    appended to without synchronization. Snapshots (drainSpans /
 *    counterSnapshot) must only run at quiescent points -- after all
 *    parallel regions have joined, which the thread pool's completion
 *    handshake already sequences.
 */

#ifndef UNIZK_OBS_OBS_H
#define UNIZK_OBS_OBS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace unizk {
namespace obs {

/** One closed span, timestamped in nanoseconds since the obs epoch. */
struct SpanEvent
{
    const char *name = nullptr; ///< static string (never freed)
    /**
     * Name of the innermost span open on the same thread when this one
     * started (nullptr for roots). Together with depth this lets
     * exporters rebuild the full per-thread call stack.
     */
    const char *parent = nullptr;
    uint64_t startNs = 0;
    uint64_t endNs = 0;
    uint32_t threadId = 0; ///< small stable per-thread id
    uint32_t depth = 0;    ///< nesting depth on the owning thread
    /** Request trace id active on the thread when the span opened
     *  (see ScopedTraceId); 0 = untraced. */
    uint64_t traceId = 0;
};

/**
 * Master switch for spans and counters. When off (the default) every
 * instrumentation hit is a single relaxed atomic load and an early
 * return. Enabling resets nothing; pair with resetAll() for a clean
 * capture window.
 */
void setEnabled(bool enabled);
bool enabled();

/** Nanoseconds since the current obs epoch (monotonic clock). */
uint64_t nowNs();

/**
 * Move all recorded spans out of the per-thread buffers, sorted by
 * (threadId, startNs). Must only be called at a quiescent point.
 */
std::vector<SpanEvent> drainSpans();

/** Merged name -> value view of every registered counter. */
std::map<std::string, uint64_t> counterSnapshot();

/** Number of log2 buckets: bucket i counts values of bit-width i
 *  (bucket 0 holds the value 0, bucket i >= 1 the range
 *  [2^(i-1), 2^i - 1]). */
constexpr size_t kHistogramBuckets = 65;

/** Merged view of one named histogram. */
struct HistogramData
{
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0; ///< 0 when count == 0
    uint64_t max = 0;
    std::array<uint64_t, kHistogramBuckets> buckets{};
};

/**
 * Merged name -> data view of every registered histogram. Like
 * counterSnapshot(), safe to call concurrently with recording; exact
 * only at quiescent points.
 */
std::map<std::string, HistogramData> histogramSnapshot();

/**
 * Approximate @p q quantile (0 <= q <= 1) of a log2-bucket histogram,
 * by linear interpolation inside the bucket holding the quantile rank.
 * With power-of-two buckets the estimate is within 2x of the true
 * value, which is the right fidelity for p50/p99 service-latency
 * reporting. Returns 0 when the histogram is empty.
 */
double histogramQuantile(const HistogramData &data, double q);

/**
 * Cap on spans buffered per thread between drains. Long-running
 * processes (the unizkd service) record spans indefinitely without a
 * quiescent point to drain at; once a thread's buffer is full further
 * spans are counted in "obs.spans_dropped" instead of buffered, so
 * memory stays bounded while histograms and counters keep recording.
 */
constexpr size_t kMaxBufferedSpansPerThread = size_t{1} << 20;

/** Inclusive value range [lo, hi] of log2 bucket @p i (bucket 0 holds
 *  exactly the value 0; bucket 64's hi saturates at UINT64_MAX). */
std::pair<uint64_t, uint64_t> bucketRange(size_t i);

/** One counter as seen by a snapshot window. */
struct CounterWindow
{
    uint64_t delta = 0;      ///< increase during this window
    uint64_t cumulative = 0; ///< monotonic total at window end
};

/** One histogram as seen by a snapshot window. The delta's min/max are
 *  the extremes recorded during the window (best effort mid-traffic,
 *  exact at quiescent points); the cumulative side matches
 *  histogramSnapshot(). */
struct HistogramWindow
{
    HistogramData delta;
    HistogramData cumulative;
};

/** Occupancy of one thread's span buffer. */
struct SpanBufferInfo
{
    uint32_t threadId = 0;
    uint64_t buffered = 0;  ///< spans currently held (0 after a drain)
    uint64_t highWater = 0; ///< peak occupancy since the last resetAll
};

/** Drop accounting and per-thread occupancy of the span buffers. Safe
 *  to call while spans are being recorded (reads mirrored atomics,
 *  never the buffers themselves). */
struct SpanBufferStats
{
    uint64_t dropped = 0; ///< spans lost to full buffers (lifetime)
    uint64_t capPerThread = kMaxBufferedSpansPerThread;
    std::vector<SpanBufferInfo> perThread; ///< sorted by threadId
};

SpanBufferStats spanBufferStats();

/**
 * One rotation of the stats window: everything that changed since the
 * previous snapshotDelta() call, alongside the cumulative totals.
 * Sequence numbers are monotonic and window intervals chain
 * (windowStartNs of rotation N+1 == windowEndNs of rotation N), so a
 * series of snapshots partitions the cumulative totals exactly: at any
 * quiescent point, the sum of all deltas ever returned equals the
 * cumulative value (pinned by the TSAN-leg stress test).
 */
struct StatsSnapshot
{
    uint64_t sequence = 0; ///< 1 for the first rotation after reset
    uint64_t windowStartNs = 0;
    uint64_t windowEndNs = 0;
    std::map<std::string, CounterWindow> counters;
    std::map<std::string, HistogramWindow> histograms;
    SpanBufferStats spans;
};

/**
 * Atomically rotate the stats window and return its contents. There is
 * one process-wide rotation stream: concurrent callers (a periodic
 * exporter and GetStats pollers, say) each receive disjoint windows
 * that together still partition the cumulative totals. Recording
 * threads are never blocked; like the plain snapshots, a window taken
 * mid-traffic may split an in-flight record's fields across two
 * windows, which the "exact only at quiescence" contract covers.
 */
StatsSnapshot snapshotDelta();

/** Clear spans, counters and histograms (including drop accounting
 *  and window-rotation baselines); restart the epoch clock. */
void resetAll();

/**
 * Mark the warmup -> measured boundary: discard everything recorded so
 * far (spans, counters, histograms -- including the cumulative and
 * per-window min/max watermarks, so a warmup outlier cannot survive
 * into the measured window's quantile clamp) and restart the window
 * rotation stream. No-op when obs is disabled. Like drainSpans(), call
 * only at a quiescent point.
 */
void resetForMeasurement();

/**
 * Tag spans opened on this thread with a request trace id for the
 * lifetime of the scope (restores the previous id on destruction, so
 * nesting works). The id is recorded into SpanEvent::traceId and
 * surfaces in the Chrome-trace export; 0 means untraced.
 */
class ScopedTraceId
{
  public:
    explicit ScopedTraceId(uint64_t id);
    ~ScopedTraceId();

    ScopedTraceId(const ScopedTraceId &) = delete;
    ScopedTraceId &operator=(const ScopedTraceId &) = delete;

  private:
    uint64_t prev_;
};

/** Trace id currently active on the calling thread (0 = none). */
uint64_t currentTraceId();

/**
 * RAII span. Construct via the UNIZK_SPAN macro with a static string;
 * the constructor samples the clock only when tracing is enabled, and
 * the destructor appends one SpanEvent to the calling thread's buffer.
 *
 * Open spans form a per-thread stack: the constructor pushes, the
 * destructor pops (including during exception unwinding, since spans
 * are scoped), so every recorded event carries its parent's name and
 * its depth on the stack. Closing also feeds the built-in
 * "obs.span_duration_ns" histogram.
 */
class Span
{
  public:
    explicit Span(const char *name);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_ = nullptr; ///< nullptr when tracing was disabled
    const char *parent_ = nullptr;
    uint64_t start_ns_ = 0;
    uint32_t depth_ = 0;
};

/**
 * Handle to one named counter. Registration (the constructor) takes a
 * mutex; add() is a relaxed fetch_add on the calling thread's block.
 * Intended use is one function-local static per call site (see
 * UNIZK_COUNTER_ADD).
 */
class Counter
{
  public:
    explicit Counter(const char *name);

    void add(uint64_t delta);

  private:
    size_t id_;
};

/**
 * Handle to one named log2-bucket histogram. Registration takes a
 * mutex; record() touches only the calling thread's block (relaxed
 * atomics), so it is safe inside parallelFor workers. Intended use is
 * one function-local static per call site (see UNIZK_OBS_HISTO).
 */
class Histogram
{
  public:
    explicit Histogram(const char *name);

    void record(uint64_t value);

  private:
    size_t id_;
};

} // namespace obs
} // namespace unizk

#if defined(UNIZK_OBS_DISABLE)

#define UNIZK_SPAN(name)                                                  \
    do {                                                                  \
    } while (false)
#define UNIZK_COUNTER_ADD(name, delta)                                    \
    do {                                                                  \
    } while (false)
#define UNIZK_OBS_HISTO(name, value)                                      \
    do {                                                                  \
    } while (false)

#else

#define UNIZK_OBS_CONCAT2(a, b) a##b
#define UNIZK_OBS_CONCAT(a, b) UNIZK_OBS_CONCAT2(a, b)

/** Open a span covering the rest of the enclosing scope. */
#define UNIZK_SPAN(name)                                                  \
    const ::unizk::obs::Span UNIZK_OBS_CONCAT(unizk_obs_span_,            \
                                              __LINE__)(name)

/** Bump the named counter by @p delta (no-op while obs is disabled). */
#define UNIZK_COUNTER_ADD(name, delta)                                    \
    do {                                                                  \
        static ::unizk::obs::Counter UNIZK_OBS_CONCAT(unizk_obs_ctr_,     \
                                                      __LINE__)(name);    \
        UNIZK_OBS_CONCAT(unizk_obs_ctr_, __LINE__)                        \
            .add(static_cast<uint64_t>(delta));                           \
    } while (false)

/** Record @p value into the named log2-bucket histogram. */
#define UNIZK_OBS_HISTO(name, value)                                      \
    do {                                                                  \
        static ::unizk::obs::Histogram UNIZK_OBS_CONCAT(                  \
            unizk_obs_histo_, __LINE__)(name);                            \
        UNIZK_OBS_CONCAT(unizk_obs_histo_, __LINE__)                      \
            .record(static_cast<uint64_t>(value));                        \
    } while (false)

#endif // UNIZK_OBS_DISABLE

#endif // UNIZK_OBS_OBS_H
