#include "obs/obs.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>

#include "common/logging.h"
#include "common/sync.h"
#include "obs/registry.h"

namespace unizk {
namespace obs {

namespace {

using internal::CounterBlock;
using internal::HistoBlock;
using internal::HistoSlot;
using internal::Registry;
using internal::SpanBuffer;

/**
 * Relaxed ordering is sufficient for the master switch: the flag gates
 * *whether* instrumentation records, but no data is prepared before
 * the store that readers must observe afterwards (counter blocks and
 * span buffers are registered under the registry mutex, which provides
 * the publication edge). A thread seeing the flip late merely skips or
 * records a few extra events. Pinned by the TSAN-leg test
 * ObsConcurrency.RelaxedAtomicsSafeUnderConcurrentExport.
 */
std::atomic<bool> g_enabled{false};

thread_local SpanBuffer *tl_span_buffer = nullptr;
thread_local CounterBlock *tl_counter_block = nullptr;
thread_local HistoBlock *tl_histo_block = nullptr;
/** Names of the spans currently open on this thread, outermost first. */
thread_local std::vector<const char *> tl_span_stack;
/** Request trace id tagged onto spans opened on this thread. */
thread_local uint64_t tl_trace_id = 0;

SpanBuffer &
threadSpanBuffer()
{
    if (tl_span_buffer == nullptr) {
        Registry &reg = Registry::instance();
        auto buf = std::make_unique<SpanBuffer>();
        buf->threadId =
            reg.nextThreadId.fetch_add(1, std::memory_order_relaxed);
        MutexLock lock(reg.mutex);
        tl_span_buffer = buf.get();
        reg.spanBuffers.push_back(std::move(buf));
    }
    return *tl_span_buffer;
}

CounterBlock &
threadCounterBlock()
{
    if (tl_counter_block == nullptr) {
        Registry &reg = Registry::instance();
        auto block = std::make_unique<CounterBlock>();
        MutexLock lock(reg.mutex);
        tl_counter_block = block.get();
        reg.counterBlocks.push_back(std::move(block));
    }
    return *tl_counter_block;
}

HistoBlock &
threadHistoBlock()
{
    if (tl_histo_block == nullptr) {
        Registry &reg = Registry::instance();
        auto block = std::make_unique<HistoBlock>();
        MutexLock lock(reg.mutex);
        tl_histo_block = block.get();
        reg.histoBlocks.push_back(std::move(block));
    }
    return *tl_histo_block;
}

/** log2 bucket of @p value: 0 for 0, else the value's bit width. */
size_t
bucketIndex(uint64_t value)
{
    size_t width = 0;
    while (value != 0) {
        ++width;
        value >>= 1;
    }
    return width;
}

/**
 * Relaxed atomic min/max updates. Each slot is written by its owning
 * thread only, so the CAS loop is uncontended and cannot livelock;
 * cross-thread readers (histogramSnapshot) tolerate a stale value by
 * contract. No release edge is needed because min/max are plain
 * values, not pointers to data that the reader dereferences.
 */
void
storeMin(std::atomic<uint64_t> &slot, uint64_t value)
{
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (value < cur &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

void
storeMax(std::atomic<uint64_t> &slot, uint64_t value)
{
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

/** a - b, clamped at 0: a resetAll() between rotations can shrink the
 *  cumulative totals below a stale baseline; never underflow. */
uint64_t
monotonicDelta(uint64_t a, uint64_t b)
{
    return a >= b ? a - b : 0;
}

SpanBufferStats
spanBufferStatsLocked(Registry &reg) UNIZK_REQUIRES(reg.mutex)
{
    SpanBufferStats out;
    out.dropped = reg.spansDropped.load(std::memory_order_relaxed);
    for (const auto &buf : reg.spanBuffers) {
        SpanBufferInfo info;
        info.threadId = buf->threadId;
        info.buffered = buf->buffered.load(std::memory_order_relaxed);
        info.highWater =
            buf->highWater.load(std::memory_order_relaxed);
        out.perThread.push_back(info);
    }
    std::sort(out.perThread.begin(), out.perThread.end(),
              [](const SpanBufferInfo &a, const SpanBufferInfo &b) {
                  return a.threadId < b.threadId;
              });
    return out;
}

} // namespace

void
setEnabled(bool enabled_flag)
{
    g_enabled.store(enabled_flag, std::memory_order_relaxed);
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

uint64_t
nowNs()
{
    const auto elapsed =
        std::chrono::steady_clock::now() - Registry::instance().epoch;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
}

std::vector<SpanEvent>
drainSpans()
{
    Registry &reg = Registry::instance();
    std::vector<SpanEvent> out;
    MutexLock lock(reg.mutex);
    for (auto &buf : reg.spanBuffers) {
        out.insert(out.end(), buf->events.begin(), buf->events.end());
        buf->events.clear();
        buf->buffered.store(0, std::memory_order_relaxed);
    }
    std::sort(out.begin(), out.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.threadId != b.threadId)
                      return a.threadId < b.threadId;
                  return a.startNs < b.startNs;
              });
    return out;
}

SpanBufferStats
spanBufferStats()
{
    Registry &reg = Registry::instance();
    MutexLock lock(reg.mutex);
    return spanBufferStatsLocked(reg);
}

std::map<std::string, uint64_t>
counterSnapshot()
{
    Registry &reg = Registry::instance();
    std::map<std::string, uint64_t> out;
    MutexLock lock(reg.mutex);
    for (size_t i = 0; i < reg.counterNames.size(); ++i) {
        uint64_t total = 0;
        for (const auto &block : reg.counterBlocks)
            total += block->values[i].load(std::memory_order_relaxed);
        out[reg.counterNames[i]] = total;
    }
    return out;
}

std::map<std::string, HistogramData>
histogramSnapshot()
{
    Registry &reg = Registry::instance();
    std::map<std::string, HistogramData> out;
    MutexLock lock(reg.mutex);
    // Bucket/count/sum/min/max are independent relaxed atomics written
    // by their owning threads; a snapshot taken mid-record may observe
    // e.g. a bucket increment whose matching sum update is not yet
    // visible. That cross-field skew is bounded by the in-flight
    // records and is the documented contract ("exact only at quiescent
    // points") -- no acquire ordering would remove it without making
    // every record a release-write, so the hot path stays relaxed.
    for (size_t i = 0; i < reg.histogramNames.size(); ++i) {
        HistogramData data;
        uint64_t min_seen = UINT64_MAX;
        for (const auto &block : reg.histoBlocks) {
            const HistoSlot &slot = block->slots[i];
            data.count += slot.count.load(std::memory_order_relaxed);
            data.sum += slot.sum.load(std::memory_order_relaxed);
            min_seen = std::min(
                min_seen, slot.min.load(std::memory_order_relaxed));
            data.max = std::max(
                data.max, slot.max.load(std::memory_order_relaxed));
            for (size_t b = 0; b < kHistogramBuckets; ++b) {
                data.buckets[b] +=
                    slot.buckets[b].load(std::memory_order_relaxed);
            }
        }
        data.min = data.count == 0 ? 0 : min_seen;
        out[reg.histogramNames[i]] = data;
    }
    return out;
}

StatsSnapshot
snapshotDelta()
{
    Registry &reg = Registry::instance();
    StatsSnapshot snap;
    MutexLock lock(reg.mutex);
    snap.windowEndNs = nowNs();
    snap.windowStartNs = reg.windowStartNs;
    snap.sequence = ++reg.snapshotSequence;

    for (size_t i = 0; i < reg.counterNames.size(); ++i) {
        uint64_t total = 0;
        for (const auto &block : reg.counterBlocks)
            total += block->values[i].load(std::memory_order_relaxed);
        uint64_t &baseline = reg.counterBaseline[reg.counterNames[i]];
        CounterWindow window;
        window.cumulative = total;
        window.delta = monotonicDelta(total, baseline);
        baseline = total;
        snap.counters[reg.counterNames[i]] = window;
    }

    for (size_t i = 0; i < reg.histogramNames.size(); ++i) {
        HistogramData cum;
        uint64_t min_seen = UINT64_MAX;
        uint64_t window_min = UINT64_MAX;
        uint64_t window_max = 0;
        for (auto &block : reg.histoBlocks) {
            HistoSlot &slot = block->slots[i];
            cum.count += slot.count.load(std::memory_order_relaxed);
            cum.sum += slot.sum.load(std::memory_order_relaxed);
            min_seen = std::min(
                min_seen, slot.min.load(std::memory_order_relaxed));
            cum.max = std::max(
                cum.max, slot.max.load(std::memory_order_relaxed));
            for (size_t b = 0; b < kHistogramBuckets; ++b) {
                cum.buckets[b] +=
                    slot.buckets[b].load(std::memory_order_relaxed);
            }
            // Consume the per-window watermarks: the exchange both
            // reads this window's extreme and re-arms the slot for the
            // next window. A record racing the rotation lands its
            // watermark in one window or the other, never both.
            window_min = std::min(
                window_min,
                slot.windowMin.exchange(UINT64_MAX,
                                        std::memory_order_relaxed));
            window_max = std::max(
                window_max,
                slot.windowMax.exchange(0,
                                        std::memory_order_relaxed));
        }
        cum.min = cum.count == 0 ? 0 : min_seen;

        HistogramData &baseline =
            reg.histogramBaseline[reg.histogramNames[i]];
        HistogramData delta;
        delta.count = monotonicDelta(cum.count, baseline.count);
        delta.sum = monotonicDelta(cum.sum, baseline.sum);
        for (size_t b = 0; b < kHistogramBuckets; ++b) {
            delta.buckets[b] =
                monotonicDelta(cum.buckets[b], baseline.buckets[b]);
        }
        if (delta.count == 0) {
            delta.min = 0;
            delta.max = 0;
        } else if (window_min != UINT64_MAX) {
            delta.min = window_min;
            delta.max = window_max;
        } else {
            // The count moved but the watermark update is not visible
            // yet (a record in flight across the rotation): fall back
            // to the cumulative range rather than reporting 0.
            delta.min = cum.min;
            delta.max = cum.max;
        }
        baseline = cum;
        snap.histograms[reg.histogramNames[i]] =
            HistogramWindow{delta, cum};
    }

    snap.spans = spanBufferStatsLocked(reg);
    reg.windowStartNs = snap.windowEndNs;
    return snap;
}

std::pair<uint64_t, uint64_t>
bucketRange(size_t i)
{
    if (i == 0)
        return {0, 0};
    const uint64_t lo = uint64_t{1} << (i - 1);
    const uint64_t hi = i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1;
    return {lo, hi};
}

double
histogramQuantile(const HistogramData &data, double q)
{
    if (data.count == 0)
        return 0.0;
    // Interpolated estimates can escape the range of recorded values in
    // both directions (the quantile rank may land in a bucket whose
    // span extends past data.max, or below data.min when the minimum
    // sits high inside its bucket), so every exit clamps to the ground
    // truth [data.min, data.max].
    const auto clamp = [&data](double v) {
        return std::min(std::max(v, static_cast<double>(data.min)),
                        static_cast<double>(data.max));
    };
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the quantile among the recorded values (1-based).
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(q * static_cast<double>(data.count)));
    uint64_t seen = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
        const uint64_t in_bucket = data.buckets[i];
        if (in_bucket == 0)
            continue;
        if (seen + in_bucket >= rank) {
            // Bucket i spans [2^(i-1), 2^i - 1] (bucket 0 holds 0).
            if (i == 0)
                return clamp(0.0);
            const double lo = static_cast<double>(uint64_t{1} << (i - 1));
            // Interpolate across the *inclusive* span [lo, 2*lo - 1]:
            // using 2*lo as the top meant frac == 1.0 (rank at the last
            // value in the bucket) reported the next bucket's lower
            // edge, a value this bucket cannot contain.
            const double hi = lo * 2.0 - 1.0;
            const double frac = static_cast<double>(rank - seen) /
                                static_cast<double>(in_bucket);
            return clamp(lo + (hi - lo) * frac);
        }
        seen += in_bucket;
    }
    return clamp(static_cast<double>(data.max));
}

void
resetAll()
{
    Registry &reg = Registry::instance();
    MutexLock lock(reg.mutex);
    for (auto &buf : reg.spanBuffers) {
        buf->events.clear();
        buf->buffered.store(0, std::memory_order_relaxed);
        buf->highWater.store(0, std::memory_order_relaxed);
    }
    for (auto &block : reg.counterBlocks) {
        for (auto &v : block->values)
            v.store(0, std::memory_order_relaxed);
    }
    for (auto &block : reg.histoBlocks) {
        for (auto &slot : block->slots) {
            for (auto &b : slot.buckets)
                b.store(0, std::memory_order_relaxed);
            slot.count.store(0, std::memory_order_relaxed);
            slot.sum.store(0, std::memory_order_relaxed);
            // Both watermark generations: the cumulative min/max and
            // the open window's min/max. Leaving either behind lets a
            // warmup outlier survive into the measured window's
            // quantile clamp (regression-pinned in test_obs).
            slot.min.store(UINT64_MAX, std::memory_order_relaxed);
            slot.max.store(0, std::memory_order_relaxed);
            slot.windowMin.store(UINT64_MAX,
                                 std::memory_order_relaxed);
            slot.windowMax.store(0, std::memory_order_relaxed);
        }
    }
    // Restart the rotation stream: stale baselines would otherwise
    // zero out every delta until the cumulative totals caught back up
    // to their pre-reset values.
    reg.snapshotSequence = 0;
    reg.windowStartNs = 0;
    reg.counterBaseline.clear();
    reg.histogramBaseline.clear();
    reg.spansDropped.store(0, std::memory_order_relaxed);
    reg.dropWarned.store(false, std::memory_order_relaxed);
    reg.epoch = std::chrono::steady_clock::now();
}

void
resetForMeasurement()
{
    if (!enabled())
        return;
    resetAll();
}

ScopedTraceId::ScopedTraceId(uint64_t id) : prev_(tl_trace_id)
{
    tl_trace_id = id;
}

ScopedTraceId::~ScopedTraceId()
{
    tl_trace_id = prev_;
}

uint64_t
currentTraceId()
{
    return tl_trace_id;
}

Span::Span(const char *name)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    name_ = name;
    parent_ = tl_span_stack.empty() ? nullptr : tl_span_stack.back();
    depth_ = static_cast<uint32_t>(tl_span_stack.size());
    tl_span_stack.push_back(name);
    start_ns_ = nowNs();
}

Span::~Span()
{
    if (name_ == nullptr)
        return;
    const uint64_t end_ns = nowNs();
    // Pop unconditionally: destructors run in reverse construction
    // order even during exception unwinding, so the top of the stack
    // is always this span.
    tl_span_stack.pop_back();
    SpanBuffer &buf = threadSpanBuffer();
    if (buf.events.size() < kMaxBufferedSpansPerThread) {
        buf.events.push_back({name_, parent_, start_ns_, end_ns,
                              buf.threadId, depth_, tl_trace_id});
        const uint64_t occupancy = buf.events.size();
        buf.buffered.store(occupancy, std::memory_order_relaxed);
        storeMax(buf.highWater, occupancy);
    } else {
        Registry &reg = Registry::instance();
        reg.spansDropped.fetch_add(1, std::memory_order_relaxed);
        static Counter dropped("obs.spans_dropped");
        dropped.add(1);
        if (!reg.dropWarned.exchange(true,
                                     std::memory_order_relaxed)) {
            warn("obs: span buffer full on thread ", buf.threadId,
                 " (", kMaxBufferedSpansPerThread,
                 " spans); dropping further spans -- counters and "
                 "histograms keep recording, obs.spans_dropped "
                 "counts the loss");
        }
    }
    static Histogram duration_histo("obs.span_duration_ns");
    duration_histo.record(end_ns - start_ns_);
}

Counter::Counter(const char *name) : id_(0)
{
    Registry &reg = Registry::instance();
    MutexLock lock(reg.mutex);
    for (size_t i = 0; i < reg.counterNames.size(); ++i) {
        if (reg.counterNames[i] == name) {
            id_ = i;
            return;
        }
    }
    if (reg.counterNames.size() >= internal::kMaxCounters)
        unizk_panic("obs counter registry full: ", name);
    id_ = reg.counterNames.size();
    reg.counterNames.emplace_back(name);
}

void
Counter::add(uint64_t delta)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    threadCounterBlock().values[id_].fetch_add(
        delta, std::memory_order_relaxed);
}

Histogram::Histogram(const char *name) : id_(0)
{
    Registry &reg = Registry::instance();
    MutexLock lock(reg.mutex);
    for (size_t i = 0; i < reg.histogramNames.size(); ++i) {
        if (reg.histogramNames[i] == name) {
            id_ = i;
            return;
        }
    }
    if (reg.histogramNames.size() >= internal::kMaxHistograms)
        unizk_panic("obs histogram registry full: ", name);
    id_ = reg.histogramNames.size();
    reg.histogramNames.emplace_back(name);
}

void
Histogram::record(uint64_t value)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    HistoSlot &slot = threadHistoBlock().slots[id_];
    slot.buckets[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    slot.count.fetch_add(1, std::memory_order_relaxed);
    slot.sum.fetch_add(value, std::memory_order_relaxed);
    storeMin(slot.min, value);
    storeMax(slot.max, value);
    storeMin(slot.windowMin, value);
    storeMax(slot.windowMax, value);
}

} // namespace obs
} // namespace unizk
