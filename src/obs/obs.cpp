#include "obs/obs.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>

#include "common/logging.h"
#include "common/sync.h"

namespace unizk {
namespace obs {

namespace {

constexpr size_t kMaxCounters = 128;
constexpr size_t kMaxHistograms = 64;

/**
 * Relaxed ordering is sufficient for the master switch: the flag gates
 * *whether* instrumentation records, but no data is prepared before
 * the store that readers must observe afterwards (counter blocks and
 * span buffers are registered under g_registry_mutex, which provides
 * the publication edge). A thread seeing the flip late merely skips or
 * records a few extra events. Pinned by the TSAN-leg test
 * ObsConcurrency.RelaxedAtomicsSafeUnderConcurrentExport.
 */
std::atomic<bool> g_enabled{false};

/** Per-thread span buffer; owned by the registry, written by one thread. */
struct SpanBuffer
{
    uint32_t threadId = 0;
    std::vector<SpanEvent> events;
};

/**
 * Per-thread counter block. The owning thread does relaxed fetch_adds;
 * snapshot readers do relaxed loads, so concurrent snapshots observe a
 * consistent-enough value without any data race.
 */
struct CounterBlock
{
    std::array<std::atomic<uint64_t>, kMaxCounters> values{};
};

/**
 * Per-thread histogram block: one bucket array plus sum/count/min/max
 * per registered histogram. Same ownership discipline as CounterBlock
 * (owning thread writes relaxed, snapshot readers load relaxed).
 */
struct HistoSlot
{
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
};

struct HistoBlock
{
    std::array<HistoSlot, kMaxHistograms> slots{};
};

/** Guards the registries (buffer/block lists and counter names). */
Mutex g_registry_mutex;
std::vector<std::unique_ptr<SpanBuffer>> g_span_buffers
    UNIZK_GUARDED_BY(g_registry_mutex);
std::vector<std::unique_ptr<CounterBlock>> g_counter_blocks
    UNIZK_GUARDED_BY(g_registry_mutex);
std::vector<std::unique_ptr<HistoBlock>> g_histo_blocks
    UNIZK_GUARDED_BY(g_registry_mutex);
std::vector<std::string> g_counter_names
    UNIZK_GUARDED_BY(g_registry_mutex);
std::vector<std::string> g_histogram_names
    UNIZK_GUARDED_BY(g_registry_mutex);
// Relaxed fetch_add is sufficient: the id only needs to be unique, no
// data is published under it.
std::atomic<uint32_t> g_next_thread_id{0};

std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

thread_local SpanBuffer *tl_span_buffer = nullptr;
thread_local CounterBlock *tl_counter_block = nullptr;
thread_local HistoBlock *tl_histo_block = nullptr;
/** Names of the spans currently open on this thread, outermost first. */
thread_local std::vector<const char *> tl_span_stack;

SpanBuffer &
threadSpanBuffer()
{
    if (tl_span_buffer == nullptr) {
        auto buf = std::make_unique<SpanBuffer>();
        buf->threadId = g_next_thread_id.fetch_add(
            1, std::memory_order_relaxed);
        MutexLock lock(g_registry_mutex);
        tl_span_buffer = buf.get();
        g_span_buffers.push_back(std::move(buf));
    }
    return *tl_span_buffer;
}

CounterBlock &
threadCounterBlock()
{
    if (tl_counter_block == nullptr) {
        auto block = std::make_unique<CounterBlock>();
        MutexLock lock(g_registry_mutex);
        tl_counter_block = block.get();
        g_counter_blocks.push_back(std::move(block));
    }
    return *tl_counter_block;
}

HistoBlock &
threadHistoBlock()
{
    if (tl_histo_block == nullptr) {
        auto block = std::make_unique<HistoBlock>();
        MutexLock lock(g_registry_mutex);
        tl_histo_block = block.get();
        g_histo_blocks.push_back(std::move(block));
    }
    return *tl_histo_block;
}

/** log2 bucket of @p value: 0 for 0, else the value's bit width. */
size_t
bucketIndex(uint64_t value)
{
    size_t width = 0;
    while (value != 0) {
        ++width;
        value >>= 1;
    }
    return width;
}

/**
 * Relaxed atomic min/max updates. Each slot is written by its owning
 * thread only, so the CAS loop is uncontended and cannot livelock;
 * cross-thread readers (histogramSnapshot) tolerate a stale value by
 * contract. No release edge is needed because min/max are plain
 * values, not pointers to data that the reader dereferences.
 */
void
storeMin(std::atomic<uint64_t> &slot, uint64_t value)
{
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (value < cur &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

void
storeMax(std::atomic<uint64_t> &slot, uint64_t value)
{
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

void
setEnabled(bool enabled_flag)
{
    g_enabled.store(enabled_flag, std::memory_order_relaxed);
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

uint64_t
nowNs()
{
    const auto elapsed = std::chrono::steady_clock::now() - g_epoch;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
}

std::vector<SpanEvent>
drainSpans()
{
    std::vector<SpanEvent> out;
    MutexLock lock(g_registry_mutex);
    for (auto &buf : g_span_buffers) {
        out.insert(out.end(), buf->events.begin(), buf->events.end());
        buf->events.clear();
    }
    std::sort(out.begin(), out.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.threadId != b.threadId)
                      return a.threadId < b.threadId;
                  return a.startNs < b.startNs;
              });
    return out;
}

std::map<std::string, uint64_t>
counterSnapshot()
{
    std::map<std::string, uint64_t> out;
    MutexLock lock(g_registry_mutex);
    for (size_t i = 0; i < g_counter_names.size(); ++i) {
        uint64_t total = 0;
        for (const auto &block : g_counter_blocks)
            total += block->values[i].load(std::memory_order_relaxed);
        out[g_counter_names[i]] = total;
    }
    return out;
}

std::map<std::string, HistogramData>
histogramSnapshot()
{
    std::map<std::string, HistogramData> out;
    MutexLock lock(g_registry_mutex);
    // Bucket/count/sum/min/max are independent relaxed atomics written
    // by their owning threads; a snapshot taken mid-record may observe
    // e.g. a bucket increment whose matching sum update is not yet
    // visible. That cross-field skew is bounded by the in-flight
    // records and is the documented contract ("exact only at quiescent
    // points") -- no acquire ordering would remove it without making
    // every record a release-write, so the hot path stays relaxed.
    for (size_t i = 0; i < g_histogram_names.size(); ++i) {
        HistogramData data;
        uint64_t min_seen = UINT64_MAX;
        for (const auto &block : g_histo_blocks) {
            const HistoSlot &slot = block->slots[i];
            data.count += slot.count.load(std::memory_order_relaxed);
            data.sum += slot.sum.load(std::memory_order_relaxed);
            min_seen = std::min(
                min_seen, slot.min.load(std::memory_order_relaxed));
            data.max = std::max(
                data.max, slot.max.load(std::memory_order_relaxed));
            for (size_t b = 0; b < kHistogramBuckets; ++b) {
                data.buckets[b] +=
                    slot.buckets[b].load(std::memory_order_relaxed);
            }
        }
        data.min = data.count == 0 ? 0 : min_seen;
        out[g_histogram_names[i]] = data;
    }
    return out;
}

double
histogramQuantile(const HistogramData &data, double q)
{
    if (data.count == 0)
        return 0.0;
    // Interpolated estimates can escape the range of recorded values in
    // both directions (the quantile rank may land in a bucket whose
    // span extends past data.max, or below data.min when the minimum
    // sits high inside its bucket), so every exit clamps to the ground
    // truth [data.min, data.max].
    const auto clamp = [&data](double v) {
        return std::min(std::max(v, static_cast<double>(data.min)),
                        static_cast<double>(data.max));
    };
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the quantile among the recorded values (1-based).
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(q * static_cast<double>(data.count)));
    uint64_t seen = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
        const uint64_t in_bucket = data.buckets[i];
        if (in_bucket == 0)
            continue;
        if (seen + in_bucket >= rank) {
            // Bucket i spans [2^(i-1), 2^i - 1] (bucket 0 holds 0).
            if (i == 0)
                return clamp(0.0);
            const double lo = static_cast<double>(uint64_t{1} << (i - 1));
            // Interpolate across the *inclusive* span [lo, 2*lo - 1]:
            // using 2*lo as the top meant frac == 1.0 (rank at the last
            // value in the bucket) reported the next bucket's lower
            // edge, a value this bucket cannot contain.
            const double hi = lo * 2.0 - 1.0;
            const double frac = static_cast<double>(rank - seen) /
                                static_cast<double>(in_bucket);
            return clamp(lo + (hi - lo) * frac);
        }
        seen += in_bucket;
    }
    return clamp(static_cast<double>(data.max));
}

void
resetAll()
{
    MutexLock lock(g_registry_mutex);
    for (auto &buf : g_span_buffers)
        buf->events.clear();
    for (auto &block : g_counter_blocks) {
        for (auto &v : block->values)
            v.store(0, std::memory_order_relaxed);
    }
    for (auto &block : g_histo_blocks) {
        for (auto &slot : block->slots) {
            for (auto &b : slot.buckets)
                b.store(0, std::memory_order_relaxed);
            slot.count.store(0, std::memory_order_relaxed);
            slot.sum.store(0, std::memory_order_relaxed);
            slot.min.store(UINT64_MAX, std::memory_order_relaxed);
            slot.max.store(0, std::memory_order_relaxed);
        }
    }
    g_epoch = std::chrono::steady_clock::now();
}

void
resetForMeasurement()
{
    if (!enabled())
        return;
    resetAll();
}

Span::Span(const char *name)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    name_ = name;
    parent_ = tl_span_stack.empty() ? nullptr : tl_span_stack.back();
    depth_ = static_cast<uint32_t>(tl_span_stack.size());
    tl_span_stack.push_back(name);
    start_ns_ = nowNs();
}

Span::~Span()
{
    if (name_ == nullptr)
        return;
    const uint64_t end_ns = nowNs();
    // Pop unconditionally: destructors run in reverse construction
    // order even during exception unwinding, so the top of the stack
    // is always this span.
    tl_span_stack.pop_back();
    SpanBuffer &buf = threadSpanBuffer();
    if (buf.events.size() < kMaxBufferedSpansPerThread) {
        buf.events.push_back(
            {name_, parent_, start_ns_, end_ns, buf.threadId, depth_});
    } else {
        static Counter dropped("obs.spans_dropped");
        dropped.add(1);
    }
    static Histogram duration_histo("obs.span_duration_ns");
    duration_histo.record(end_ns - start_ns_);
}

Counter::Counter(const char *name) : id_(0)
{
    MutexLock lock(g_registry_mutex);
    for (size_t i = 0; i < g_counter_names.size(); ++i) {
        if (g_counter_names[i] == name) {
            id_ = i;
            return;
        }
    }
    if (g_counter_names.size() >= kMaxCounters)
        unizk_panic("obs counter registry full: ", name);
    id_ = g_counter_names.size();
    g_counter_names.emplace_back(name);
}

void
Counter::add(uint64_t delta)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    threadCounterBlock().values[id_].fetch_add(
        delta, std::memory_order_relaxed);
}

Histogram::Histogram(const char *name) : id_(0)
{
    MutexLock lock(g_registry_mutex);
    for (size_t i = 0; i < g_histogram_names.size(); ++i) {
        if (g_histogram_names[i] == name) {
            id_ = i;
            return;
        }
    }
    if (g_histogram_names.size() >= kMaxHistograms)
        unizk_panic("obs histogram registry full: ", name);
    id_ = g_histogram_names.size();
    g_histogram_names.emplace_back(name);
}

void
Histogram::record(uint64_t value)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    HistoSlot &slot = threadHistoBlock().slots[id_];
    slot.buckets[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    slot.count.fetch_add(1, std::memory_order_relaxed);
    slot.sum.fetch_add(value, std::memory_order_relaxed);
    storeMin(slot.min, value);
    storeMax(slot.max, value);
}

} // namespace obs
} // namespace unizk
