#include "obs/obs.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "common/logging.h"

namespace unizk {
namespace obs {

namespace {

constexpr size_t kMaxCounters = 128;

std::atomic<bool> g_enabled{false};

/** Per-thread span buffer; owned by the registry, written by one thread. */
struct SpanBuffer
{
    uint32_t threadId = 0;
    std::vector<SpanEvent> events;
};

/**
 * Per-thread counter block. The owning thread does relaxed fetch_adds;
 * snapshot readers do relaxed loads, so concurrent snapshots observe a
 * consistent-enough value without any data race.
 */
struct CounterBlock
{
    std::array<std::atomic<uint64_t>, kMaxCounters> values{};
};

/** Guards the registries (buffer/block lists and counter names). */
std::mutex g_registry_mutex;
std::vector<std::unique_ptr<SpanBuffer>> g_span_buffers;
std::vector<std::unique_ptr<CounterBlock>> g_counter_blocks;
std::vector<std::string> g_counter_names;
std::atomic<uint32_t> g_next_thread_id{0};

std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

thread_local SpanBuffer *tl_span_buffer = nullptr;
thread_local CounterBlock *tl_counter_block = nullptr;
thread_local uint32_t tl_depth = 0;

SpanBuffer &
threadSpanBuffer()
{
    if (tl_span_buffer == nullptr) {
        auto buf = std::make_unique<SpanBuffer>();
        buf->threadId = g_next_thread_id.fetch_add(
            1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(g_registry_mutex);
        tl_span_buffer = buf.get();
        g_span_buffers.push_back(std::move(buf));
    }
    return *tl_span_buffer;
}

CounterBlock &
threadCounterBlock()
{
    if (tl_counter_block == nullptr) {
        auto block = std::make_unique<CounterBlock>();
        std::lock_guard<std::mutex> lock(g_registry_mutex);
        tl_counter_block = block.get();
        g_counter_blocks.push_back(std::move(block));
    }
    return *tl_counter_block;
}

} // namespace

void
setEnabled(bool enabled_flag)
{
    g_enabled.store(enabled_flag, std::memory_order_relaxed);
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

uint64_t
nowNs()
{
    const auto elapsed = std::chrono::steady_clock::now() - g_epoch;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
}

std::vector<SpanEvent>
drainSpans()
{
    std::vector<SpanEvent> out;
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (auto &buf : g_span_buffers) {
        out.insert(out.end(), buf->events.begin(), buf->events.end());
        buf->events.clear();
    }
    std::sort(out.begin(), out.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.threadId != b.threadId)
                      return a.threadId < b.threadId;
                  return a.startNs < b.startNs;
              });
    return out;
}

std::map<std::string, uint64_t>
counterSnapshot()
{
    std::map<std::string, uint64_t> out;
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (size_t i = 0; i < g_counter_names.size(); ++i) {
        uint64_t total = 0;
        for (const auto &block : g_counter_blocks)
            total += block->values[i].load(std::memory_order_relaxed);
        out[g_counter_names[i]] = total;
    }
    return out;
}

void
resetAll()
{
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (auto &buf : g_span_buffers)
        buf->events.clear();
    for (auto &block : g_counter_blocks) {
        for (auto &v : block->values)
            v.store(0, std::memory_order_relaxed);
    }
    g_epoch = std::chrono::steady_clock::now();
}

Span::Span(const char *name)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    name_ = name;
    start_ns_ = nowNs();
    depth_ = tl_depth++;
}

Span::~Span()
{
    if (name_ == nullptr)
        return;
    --tl_depth;
    SpanBuffer &buf = threadSpanBuffer();
    buf.events.push_back(
        {name_, start_ns_, nowNs(), buf.threadId, depth_});
}

Counter::Counter(const char *name) : id_(0)
{
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (size_t i = 0; i < g_counter_names.size(); ++i) {
        if (g_counter_names[i] == name) {
            id_ = i;
            return;
        }
    }
    if (g_counter_names.size() >= kMaxCounters)
        unizk_panic("obs counter registry full: ", name);
    id_ = g_counter_names.size();
    g_counter_names.emplace_back(name);
}

void
Counter::add(uint64_t delta)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    threadCounterBlock().values[id_].fetch_add(
        delta, std::memory_order_relaxed);
}

} // namespace obs
} // namespace unizk
