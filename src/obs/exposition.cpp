#include "obs/exposition.h"

#include <cctype>

namespace unizk {
namespace obs {

namespace {

void
appendHelpType(std::string &out, const std::string &metric,
               const std::string &raw, const char *type)
{
    out += "# HELP " + metric + " obs " + type + " \"" + raw + "\".\n";
    out += "# TYPE " + metric + " " + type + "\n";
}

} // namespace

std::string
promMetricName(const std::string &raw)
{
    std::string out = "unizk_";
    out.reserve(out.size() + raw.size());
    for (const char c : raw) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_';
        out += ok ? c : '_';
    }
    return out;
}

std::string
renderExposition(const std::map<std::string, uint64_t> &counters,
                 const std::map<std::string, HistogramData> &histograms)
{
    std::string out;

    for (const auto &[name, value] : counters) {
        std::string metric = promMetricName(name);
        // Counter families end in _total by convention; "_total_total"
        // would be silly if a raw name already carries the suffix.
        if (metric.size() < 6 ||
            metric.compare(metric.size() - 6, 6, "_total") != 0) {
            metric += "_total";
        }
        appendHelpType(out, metric, name, "counter");
        out += metric + " " + std::to_string(value) + "\n";
    }

    for (const auto &[name, data] : histograms) {
        const std::string metric = promMetricName(name);
        appendHelpType(out, metric, name, "histogram");
        // Cumulative bucket counts up to the highest populated bucket;
        // every le edge in between is emitted (even empty ones) so the
        // series is trivially monotonic and ordered.
        size_t top = 0;
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
            if (data.buckets[i] != 0)
                top = i;
        }
        uint64_t running = 0;
        for (size_t i = 0; i <= top && data.count != 0; ++i) {
            running += data.buckets[i];
            out += metric + "_bucket{le=\"" +
                   std::to_string(bucketRange(i).second) + "\"} " +
                   std::to_string(running) + "\n";
        }
        out += metric + "_bucket{le=\"+Inf\"} " +
               std::to_string(data.count) + "\n";
        out += metric + "_sum " + std::to_string(data.sum) + "\n";
        out += metric + "_count " + std::to_string(data.count) + "\n";
    }

    return out;
}

} // namespace obs
} // namespace unizk
