#include "model/gpu_model.h"

namespace unizk {

namespace {

/** Bytes a kernel moves between host and device when offloaded. */
struct TransferVisitor
{
    uint64_t operator()(const NttKernel &k) const
    {
        return (uint64_t{1} << k.logSize) * k.batch * 8 * 2;
    }
    uint64_t operator()(const MerkleKernel &k) const
    {
        // Leaves down, digests back.
        return k.leafCount * (uint64_t{8} * k.leafLength + 32);
    }
    uint64_t operator()(const HashKernel &) const { return 0; }
    uint64_t operator()(const VecOpKernel &k) const
    {
        return k.length * 8 *
               (uint64_t{k.inputVectors} + k.outputVectors);
    }
    uint64_t operator()(const PartialProductKernel &k) const
    {
        return k.length * 8;
    }
    uint64_t operator()(const TransposeKernel &k) const
    {
        return k.rows * k.cols * 8;
    }
    uint64_t operator()(const SumCheckKernel &k) const
    {
        return (uint64_t{1} << k.logSize) * 8;
    }
};

bool
runsOnGpu(const KernelPayload &p)
{
    // The CUDA port accelerates NTT, Merkle hashing, and element-wise
    // polynomial work; partial products, Fiat-Shamir hashing, and
    // layout transforms stay on the host.
    return std::holds_alternative<NttKernel>(p) ||
           std::holds_alternative<MerkleKernel>(p) ||
           std::holds_alternative<VecOpKernel>(p);
}

} // namespace

GpuEstimate
estimateGpuTime(const KernelTimeBreakdown &cpu, const KernelTrace &trace,
                const GpuModelParams &params)
{
    GpuEstimate est;

    est.gpuKernelSeconds =
        cpu.seconds(KernelClass::Ntt) / params.nttSpeedup +
        cpu.seconds(KernelClass::MerkleTree) / params.hashSpeedup +
        cpu.seconds(KernelClass::Polynomial) / params.polySpeedup;

    // Host-resident work: Fiat-Shamir / PoW hashing and the layout
    // transforms tied to host-side data staging.
    est.hostSeconds = cpu.seconds(KernelClass::OtherHash) +
                      cpu.seconds(KernelClass::LayoutTransform);

    // Data crossing PCIe every time execution bounces between host and
    // device, plus launch overhead per offloaded kernel.
    uint64_t transfer_bytes = 0;
    size_t offloaded = 0;
    bool prev_on_gpu = false;
    for (const KernelOp &op : trace.ops) {
        const bool on_gpu = runsOnGpu(op.payload);
        if (on_gpu) {
            ++offloaded;
            // Crossing host->device (or first use) pays the input
            // transfer; results consumed by host kernels pay on the
            // way back.
            if (!prev_on_gpu)
                transfer_bytes += std::visit(TransferVisitor{},
                                             op.payload);
        } else if (prev_on_gpu) {
            transfer_bytes += std::visit(TransferVisitor{}, op.payload);
        }
        prev_on_gpu = on_gpu;
    }
    est.transferSeconds =
        static_cast<double>(transfer_bytes) / params.pcieBytesPerSecond +
        static_cast<double>(offloaded) * params.launchSeconds;

    est.totalSeconds =
        est.gpuKernelSeconds + est.hostSeconds + est.transferSeconds;
    return est;
}

} // namespace unizk
