/**
 * @file
 * Analytical model of the GPU baseline (Table 3's GPU column).
 *
 * The paper's GPU baseline runs a Plonky2 CUDA port on an A100 (80 GB,
 * 2 TB/s): NTT, Merkle-tree hashing, and element-wise polynomial
 * kernels execute on the GPU; every other kernel stays on the host
 * CPU, forcing back-and-forth PCIe transfers (Section 6, "Baselines";
 * Section 7.1 explains why the resulting speedups cap at 1.2-4.6x).
 *
 * No CUDA hardware is available in this environment, so the GPU column
 * is modeled (a documented substitution, DESIGN.md): per-kernel-class
 * GPU speedup factors over the measured CPU time, a host-resident
 * remainder, and PCIe transfer time derived from the recorded kernel
 * trace's data volumes.
 */

#ifndef UNIZK_MODEL_GPU_MODEL_H
#define UNIZK_MODEL_GPU_MODEL_H

#include "common/stats.h"
#include "trace/kernel_trace.h"

namespace unizk {

struct GpuModelParams
{
    /**
     * GPU-over-CPU speedups per accelerated kernel class, relative to
     * the (multithreaded) CPU baseline the caller supplies. NTT is
     * low: its strided butterflies make poor use of GPU memory
     * coalescing (the paper calls NTT memory accesses "not friendly to
     * GPUs").
     */
    double nttSpeedup = 2.5;
    double hashSpeedup = 6.0;
    double polySpeedup = 4.0;

    /** PCIe gen4 x16 effective bandwidth (bytes/second). */
    double pcieBytesPerSecond = 24e9;

    /** Fixed per-offloaded-kernel launch/synchronization cost. */
    double launchSeconds = 20e-6;
};

struct GpuEstimate
{
    double totalSeconds = 0.0;
    double gpuKernelSeconds = 0.0;
    double hostSeconds = 0.0;
    double transferSeconds = 0.0;
};

/**
 * Estimate GPU proof-generation time from the measured CPU kernel-time
 * breakdown and the recorded trace (for transfer volumes).
 */
GpuEstimate estimateGpuTime(const KernelTimeBreakdown &cpu,
                            const KernelTrace &trace,
                            const GpuModelParams &params = {});

} // namespace unizk

#endif // UNIZK_MODEL_GPU_MODEL_H
