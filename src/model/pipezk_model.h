/**
 * @file
 * Cost models for the Groth16 protocol and the PipeZK accelerator,
 * used by the Table 6 comparison.
 *
 * The paper itself compares against PipeZK's *reported* numbers (the
 * two designs share neither protocol nor testbed): SHA-256 and AES-128
 * single-block circuits, CPU Groth16 times of 1.5 s / 1.1 s, and
 * PipeZK ASIC times of 102 ms / 97 ms, with the ASIC-resident portion
 * being 1/4 to 1/3 of end-to-end time. This module encodes a simple
 * R1CS-size-proportional model calibrated to those published design
 * points so that the Table 6 harness can regenerate the comparison and
 * extrapolate the batched-blocks throughput experiment (840x claim).
 */

#ifndef UNIZK_MODEL_PIPEZK_MODEL_H
#define UNIZK_MODEL_PIPEZK_MODEL_H

#include <cstdint>
#include <string>

namespace unizk {

/** An R1CS circuit size for the Groth16 pipeline. */
struct Groth16Circuit
{
    std::string name;
    uint64_t constraints = 0;

    /** Published single-block circuit sizes (approximate R1CS counts). */
    static Groth16Circuit sha256OneBlock();
    static Groth16Circuit aes128OneBlock();
};

struct Groth16CostModel
{
    /**
     * CPU proving: dominated by 3 G1 MSMs + 1 G2 MSM + 7 NTTs over a
     * ~256-bit field. Calibrated to 1.5 s for the ~30k-constraint
     * SHA-256 block on the paper's Xeon server.
     */
    double cpuSecondsPerConstraint = 1.5 / 30000.0;

    /**
     * PipeZK ASIC: pipelined NTT + MSM units; calibrated to 102 ms for
     * the SHA-256 block. The remaining (1 - asicFraction) runs on the
     * host CPU (witness generation, data marshalling).
     */
    double asicSecondsPerConstraint = 102e-3 / 30000.0;

    /** Portion of PipeZK end-to-end time spent on the ASIC itself. */
    double asicFraction = 0.3;

    double cpuSeconds(const Groth16Circuit &c) const;
    double pipezkSeconds(const Groth16Circuit &c) const;
    double pipezkAsicOnlySeconds(const Groth16Circuit &c) const;

    /** PipeZK SHA-256 block throughput (paper: ~10 blocks/s). */
    double pipezkBlocksPerSecond(const Groth16Circuit &c) const;
};

} // namespace unizk

#endif // UNIZK_MODEL_PIPEZK_MODEL_H
