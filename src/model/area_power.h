/**
 * @file
 * Area and power model of the UniZK chip (paper Table 2).
 *
 * The paper's numbers come from ASAP-7nm synthesis of the RTL plus
 * FN-CACTI for the SRAM structures; here each component carries a
 * per-unit cost calibrated to the published breakdown, so the default
 * configuration (32 VSAs, 8 MB scratchpad, 2 HBM PHYs) reproduces
 * Table 2 exactly and other configurations scale sensibly for the
 * design-space exploration.
 */

#ifndef UNIZK_MODEL_AREA_POWER_H
#define UNIZK_MODEL_AREA_POWER_H

#include <string>
#include <vector>

#include "sim/hw_config.h"

namespace unizk {

struct ComponentCost
{
    std::string name;
    double areaMm2 = 0.0;
    double powerW = 0.0;
};

struct ChipCost
{
    std::vector<ComponentCost> components;

    double totalAreaMm2() const;
    double totalPowerW() const;
};

/**
 * Compute per-component area/power for a hardware configuration.
 * @param num_hbm_phys number of HBM2e PHYs (2 in the default chip).
 */
ChipCost estimateChipCost(const HardwareConfig &cfg,
                          uint32_t num_hbm_phys = 2);

} // namespace unizk

#endif // UNIZK_MODEL_AREA_POWER_H
