#include "model/area_power.h"

namespace unizk {

namespace {

// Per-unit costs calibrated so the paper's default configuration
// reproduces Table 2: 32 VSAs = 21.3 mm^2 / 58.0 W, 8 MB scratchpad =
// 5.0 mm^2 / 1.0 W, twiddle generator 0.8 / 2.6, transpose buffer
// 0.9 / 3.1, two HBM PHYs 29.8 / 31.7.
constexpr double vsa_area = 21.3 / 32.0;
constexpr double vsa_power = 58.0 / 32.0;
constexpr double sram_area_per_mb = 5.0 / 8.0;
constexpr double sram_power_per_mb = 1.0 / 8.0;
constexpr double twiddle_area = 0.8;
constexpr double twiddle_power = 2.6;
constexpr double transpose_area = 0.9;  // at 16x16
constexpr double transpose_power = 3.1;
constexpr double hbm_phy_area = 29.8 / 2.0;
constexpr double hbm_phy_power = 31.7 / 2.0;

} // namespace

double
ChipCost::totalAreaMm2() const
{
    double total = 0.0;
    for (const auto &c : components)
        total += c.areaMm2;
    return total;
}

double
ChipCost::totalPowerW() const
{
    double total = 0.0;
    for (const auto &c : components)
        total += c.powerW;
    return total;
}

ChipCost
estimateChipCost(const HardwareConfig &cfg, uint32_t num_hbm_phys)
{
    ChipCost cost;
    const double mb =
        static_cast<double>(cfg.scratchpadBytes) / (1 << 20);
    // VSA cost scales with PE count relative to the default 12x12.
    const double pe_scale =
        static_cast<double>(cfg.vsaDim) * cfg.vsaDim / (12.0 * 12.0);
    // Transpose buffer is a b x b element crossbar-backed SRAM: area
    // grows with b^2 relative to the default 16.
    const double tr_scale = static_cast<double>(cfg.transposeDim) *
                            cfg.transposeDim / (16.0 * 16.0);

    cost.components.push_back({std::to_string(cfg.numVsas) + " VSAs",
                               cfg.numVsas * vsa_area * pe_scale,
                               cfg.numVsas * vsa_power * pe_scale});
    cost.components.push_back(
        {std::to_string(cfg.scratchpadBytes >> 20) + " MB scratchpad",
         mb * sram_area_per_mb, mb * sram_power_per_mb});
    cost.components.push_back(
        {"Twiddle factor generator", twiddle_area, twiddle_power});
    cost.components.push_back({"Transpose buffer",
                               transpose_area * tr_scale,
                               transpose_power * tr_scale});
    cost.components.push_back(
        {std::to_string(num_hbm_phys) + " HBM PHYs",
         num_hbm_phys * hbm_phy_area, num_hbm_phys * hbm_phy_power});
    return cost;
}

} // namespace unizk
