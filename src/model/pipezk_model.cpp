#include "model/pipezk_model.h"

namespace unizk {

Groth16Circuit
Groth16Circuit::sha256OneBlock()
{
    // ~30k R1CS constraints for one SHA-256 compression (standard
    // gadget libraries land between 25k and 30k).
    return {"SHA-256", 30000};
}

Groth16Circuit
Groth16Circuit::aes128OneBlock()
{
    // AES-128 block encryption: ~22k constraints.
    return {"AES-128", 22000};
}

double
Groth16CostModel::cpuSeconds(const Groth16Circuit &c) const
{
    return cpuSecondsPerConstraint * static_cast<double>(c.constraints);
}

double
Groth16CostModel::pipezkSeconds(const Groth16Circuit &c) const
{
    return asicSecondsPerConstraint * static_cast<double>(c.constraints);
}

double
Groth16CostModel::pipezkAsicOnlySeconds(const Groth16Circuit &c) const
{
    return pipezkSeconds(c) * asicFraction;
}

double
Groth16CostModel::pipezkBlocksPerSecond(const Groth16Circuit &c) const
{
    return 1.0 / pipezkSeconds(c);
}

} // namespace unizk
